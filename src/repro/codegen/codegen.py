"""Code generation from the lowered loop-nest IR to an abstract instruction program.

The generator mirrors what the LLVM backend does in the paper's flow, at the
granularity the instruction-accurate simulator needs: it expands every store
statement into the memory references and the arithmetic/branch instructions a
compiler would emit for the requested target, applies simple but important
compiler behaviours (register promotion of loop-invariant references,
vectorisation of annotated loops, loop-overhead elimination for unrolled
loops), and lays out the kernel's buffers in a flat address space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.codegen.isa import InstructionCategory as IC
from repro.codegen.program import (
    Block,
    Buffer,
    Guard,
    LinearPredicate,
    Loop,
    MemoryAccess,
    Node,
    Program,
)
from repro.codegen.target import Target
from repro.te.expr import (
    BinaryOp,
    CmpOp,
    Expr,
    FloatImm,
    IntImm,
    LogicalOp,
    NotOp,
    Select,
    Var,
    affine_form,
)
from repro.te.ir import (
    BufferLoad,
    BufferStore,
    For,
    ForKind,
    IfThenElse,
    LoweredFunc,
    Seq,
    Stmt,
)
from repro.te.tensor import Tensor


class CodegenError(Exception):
    """Raised when the lowered IR contains a construct the backend cannot handle."""


class _VectorContext:
    """Information about the enclosing vectorised loop, if any."""

    def __init__(self, var: Var, lanes: int):
        self.var = var
        self.lanes = lanes


class _Codegen:
    def __init__(self, func: LoweredFunc, target: Target):
        self.func = func
        self.target = target
        self.buffer_map: Dict[int, Buffer] = {}
        for tensor in func.buffers:
            self.buffer_map[id(tensor)] = Buffer(
                name=tensor.name,
                size_bytes=tensor.nbytes,
                element_bytes=tensor.dtype_bytes,
            )
        #: Loop variables currently in scope, innermost last.
        self.loop_vars: List[Tuple[Var, int]] = []

    # -- entry point ------------------------------------------------------
    def run(self, name: Optional[str] = None) -> Program:
        roots = [self._build_node(stmt, None) for stmt in self._flatten_roots(self.func.body)]
        return Program(
            name=name or self.func.name,
            target=self.target,
            buffers=list(self.buffer_map.values()),
            roots=roots,
        )

    def _flatten_roots(self, stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, Seq):
            out: List[Stmt] = []
            for child in stmt.stmts:
                out.extend(self._flatten_roots(child))
            return out
        return [stmt]

    # -- statement lowering ------------------------------------------------
    def _build_node(self, stmt: Stmt, vector: Optional[_VectorContext]) -> Node:
        if isinstance(stmt, For):
            return self._build_loop(stmt, vector)
        if isinstance(stmt, IfThenElse):
            return self._build_guard(stmt, vector)
        if isinstance(stmt, BufferStore):
            return self._build_block(stmt, vector)
        if isinstance(stmt, Seq):
            raise CodegenError(
                "nested statement sequences are not supported inside loop nests"
            )
        raise CodegenError(f"cannot generate code for statement {type(stmt).__name__}")

    def _build_loop(self, stmt: For, vector: Optional[_VectorContext]) -> Node:
        kind = stmt.kind
        extent = stmt.extent
        overhead = {IC.INT_ALU: 2.0, IC.BRANCH: 1.0}
        code_replication = 1
        inner_vector = vector

        if kind == ForKind.VECTORIZED and self.target.enable_vectorization:
            lanes = self.target.isa.vector_lanes(dtype_bytes=4)
            if lanes > 1:
                if vector is not None:
                    raise CodegenError("nested vectorised loops are not supported")
                inner_vector = _VectorContext(stmt.loop_var, min(lanes, extent))
                extent = -(-stmt.extent // inner_vector.lanes)  # ceil division
            else:
                kind = ForKind.SERIAL
        elif kind == ForKind.VECTORIZED:
            kind = ForKind.SERIAL

        if kind == ForKind.UNROLLED:
            overhead = {}
            code_replication = min(stmt.extent, 64)

        self.loop_vars.append((stmt.loop_var, extent))
        try:
            body = self._build_node(stmt.body, inner_vector)
        finally:
            self.loop_vars.pop()

        loop = Loop(
            var=stmt.loop_var.name,
            extent=extent,
            kind=kind,
            body=body,
            overhead=overhead,
            code_replication=code_replication,
        )
        self._hoist_invariant_accesses(loop)
        return loop

    def _build_guard(self, stmt: IfThenElse, vector: Optional[_VectorContext]) -> Node:
        if stmt.else_body is not None:
            raise CodegenError("if/else statements are not generated by the lowering pass")
        predicates = self._extract_predicates(stmt.cond, vector)
        penalty = {IC.INT_ALU: float(len(predicates)), IC.BRANCH: 1.0}
        body = self._build_node(stmt.then_body, vector)
        return Guard(predicates=predicates, body=body, penalty=penalty)

    # -- block construction -------------------------------------------------
    def _build_block(self, stmt: BufferStore, vector: Optional[_VectorContext]) -> Block:
        block = Block()
        self._analyze_value(stmt.value, block, [], vector)
        store_access = self._make_access(
            stmt.buffer, stmt.index, is_store=True, predicates=[], vector=vector
        )
        block.accesses.append(store_access)
        instruction_estimate = sum(block.counts.values()) + sum(
            access.instructions_per_access() + sum(access.extra_counts.values())
            for access in block.accesses
        )
        block.code_bytes = instruction_estimate * self.target.isa.avg_instruction_bytes
        return block

    def _analyze_value(
        self,
        expr: Expr,
        block: Block,
        predicates: List[LinearPredicate],
        vector: Optional[_VectorContext],
    ) -> None:
        """Accumulate instruction counts and memory accesses of a value expression."""
        if isinstance(expr, BufferLoad):
            block.accesses.append(
                self._make_access(expr.buffer, expr.index, False, list(predicates), vector)
            )
            return
        if isinstance(expr, (IntImm, FloatImm, Var)):
            return
        if isinstance(expr, Select):
            select_predicates = self._extract_predicates(expr.cond, vector)
            if self.target.isa.has_predication:
                self._add_vectorizable(block, IC.INT_ALU, float(len(select_predicates) + 1), vector)
            else:
                block.add_count(IC.INT_ALU, float(len(select_predicates)))
                block.add_count(IC.BRANCH, 1.0)
            self._analyze_value(expr.true_value, block, predicates + select_predicates, vector)
            self._analyze_value(expr.false_value, block, predicates, vector)
            return
        if isinstance(expr, BinaryOp):
            if self.target.isa.has_fma and expr.op in ("add", "sub"):
                fused = self._try_fma(expr, block, predicates, vector)
                if fused:
                    return
            self._analyze_value(expr.a, block, predicates, vector)
            self._analyze_value(expr.b, block, predicates, vector)
            category = {
                "add": IC.FP_ADD,
                "sub": IC.FP_ADD,
                "mul": IC.FP_MUL,
            }.get(expr.op, IC.FP_OTHER)
            self._add_fp(block, category, vector)
            return
        if isinstance(expr, (CmpOp, LogicalOp, NotOp)):
            # Comparisons at value level only appear inside Select conditions,
            # which are handled above.
            raise CodegenError("unexpected comparison outside a select condition")
        raise CodegenError(f"cannot generate code for expression {type(expr).__name__}")

    def _try_fma(
        self,
        expr: BinaryOp,
        block: Block,
        predicates: List[LinearPredicate],
        vector: Optional[_VectorContext],
    ) -> bool:
        """Fuse ``a + b * c`` into one FMA when the target supports it."""
        a, b = expr.a, expr.b
        mul = None
        other = None
        if isinstance(b, BinaryOp) and b.op == "mul":
            mul, other = b, a
        elif isinstance(a, BinaryOp) and a.op == "mul":
            mul, other = a, b
        if mul is None:
            return False
        self._analyze_value(other, block, predicates, vector)
        self._analyze_value(mul.a, block, predicates, vector)
        self._analyze_value(mul.b, block, predicates, vector)
        self._add_fp(block, IC.FP_FMA, vector)
        return True

    def _add_fp(self, block: Block, category: str, vector: Optional[_VectorContext]) -> None:
        if vector is not None:
            block.add_count(IC.VEC_FP, 1.0)
        else:
            block.add_count(category, 1.0)

    def _add_vectorizable(
        self, block: Block, category: str, amount: float, vector: Optional[_VectorContext]
    ) -> None:
        """Add counts for operations that stay one-per-vector under SIMD."""
        block.add_count(category, amount)

    # -- memory access construction -----------------------------------------
    def _make_access(
        self,
        tensor: Tensor,
        index: Expr,
        is_store: bool,
        predicates: List[LinearPredicate],
        vector: Optional[_VectorContext],
    ) -> MemoryAccess:
        buffer = self.buffer_map.get(id(tensor))
        if buffer is None:
            raise CodegenError(f"tensor {tensor.name} is not a buffer of this function")
        loop_var_objects = [var for var, _ in self.loop_vars]
        affine = affine_form(index, loop_var_objects)
        if affine is None:
            raise CodegenError(
                f"index expression for buffer {tensor.name} is not affine in the loop "
                "variables (fused loops are not supported by the backend)"
            )
        coeffs_by_var, const = affine
        coeffs = {var.name: coeff for var, coeff in coeffs_by_var.items()}

        width = 1
        gather_stride = 0
        if vector is not None:
            lane_coeff = coeffs.get(vector.var.name, 0)
            if lane_coeff == 0:
                width = 1
            elif lane_coeff == 1:
                width = vector.lanes
                coeffs[vector.var.name] = vector.lanes
            else:
                width = vector.lanes
                gather_stride = lane_coeff
                coeffs[vector.var.name] = lane_coeff * vector.lanes

        n_terms = len([c for c in coeffs.values() if c != 0])
        if self.target.isa.complex_addressing:
            address_alu = max(0, n_terms - 2)
        else:
            address_alu = max(0, n_terms - 1) + (1 if n_terms else 0)
        extra = {IC.INT_ALU: float(address_alu)} if address_alu else {}

        return MemoryAccess(
            buffer=buffer,
            coeffs=coeffs,
            const=const,
            is_store=is_store,
            width=width,
            gather_stride=gather_stride,
            predicates=list(predicates),
            extra_counts=extra,
        )

    # -- predicates -----------------------------------------------------------
    def _extract_predicates(
        self, cond: Expr, vector: Optional[_VectorContext]
    ) -> List[LinearPredicate]:
        if isinstance(cond, LogicalOp):
            if cond.op != "and":
                raise CodegenError("only conjunctive conditions are generated")
            return self._extract_predicates(cond.a, vector) + self._extract_predicates(
                cond.b, vector
            )
        if isinstance(cond, CmpOp):
            loop_var_objects = [var for var, _ in self.loop_vars]
            difference = BinaryOp("sub", cond.a, cond.b)
            affine = affine_form(difference, loop_var_objects)
            if affine is None:
                raise CodegenError("condition is not affine in the loop variables")
            coeffs_by_var, const = affine
            coeffs = {var.name: coeff for var, coeff in coeffs_by_var.items()}
            if vector is not None and coeffs.get(vector.var.name, 0) != 0:
                coeffs[vector.var.name] = coeffs[vector.var.name] * vector.lanes
            return [LinearPredicate(coeffs=coeffs, const=const, op=cond.op)]
        raise CodegenError(f"unsupported condition expression {type(cond).__name__}")

    # -- register promotion ----------------------------------------------------
    def _hoist_invariant_accesses(self, loop: Loop) -> None:
        """Promote loop-invariant references of the innermost loop to registers.

        A load whose address does not depend on the innermost loop variable is
        performed once before the loop (modelled as executing only on the
        first iteration); the matching store of an accumulator is performed
        once after it (modelled as executing only on the last iteration).
        """
        if not self.target.enable_scalar_replacement:
            return
        node = loop.body
        while isinstance(node, Guard):
            node = node.body
        if not isinstance(node, Block):
            return  # not the innermost loop
        first = LinearPredicate(coeffs={loop.var: 1}, const=0, op="eq")
        last = LinearPredicate(coeffs={loop.var: 1}, const=-(loop.extent - 1), op="eq")
        for access in node.accesses:
            if access.coeffs.get(loop.var, 0) != 0:
                continue
            if any(loop.var in predicate.coeffs for predicate in access.predicates):
                continue
            access.predicates = list(access.predicates) + [last if access.is_store else first]


def build_program(func: LoweredFunc, target: Target, name: Optional[str] = None) -> Program:
    """Generate an abstract instruction :class:`Program` for ``func`` on ``target``."""
    return _Codegen(func, target).run(name)

"""Abstract instruction programs: the executable artefact of code generation.

A :class:`Program` is a tree of :class:`Loop`, :class:`Guard` and
:class:`Block` nodes.  Each block records the instruction mix of one innermost
iteration and the memory references it performs, expressed as affine access
descriptors over the enclosing loop variables.  From this representation the
simulator derives exact instruction counts analytically and generates the
memory reference trace either as materialised address chunks
(:meth:`Program.memory_trace`) or as compressed affine run descriptors
(:meth:`Program.memory_trace_descriptors`) that the vectorized cache engine
consumes without ever expanding the address stream.

Descriptors are multi-level **grid run batches** ``(base, strides[],
counts[])``: the innermost level is a run of consecutive accesses (the
affine window), and each outer level replicates the stored runs across one
predicate-free loop variable, so a tiled inner window nested under outer
loops is a single descriptor instead of one stored run per window.  Only
the digit combinations of loop variables that appear in some predicate are
enumerated as stored runs — their windows clip differently — which keeps
guarded and padded accesses compressed too.  See :class:`AccessRunBatch`
and :class:`_AccessRunPlan` for the exact layout and emission rules.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.isa import InstructionCategory as IC
from repro.codegen.target import Target

#: Maximum number of points enumerated exactly when computing the fraction of
#: iterations that satisfy a predicate; larger domains are sampled.
_MAX_ENUMERATION = 1 << 20


# ---------------------------------------------------------------------------
# buffers and access descriptors
# ---------------------------------------------------------------------------


@dataclass
class Buffer:
    """A contiguous memory region backing one tensor."""

    name: str
    size_bytes: int
    element_bytes: int
    base_address: int = 0

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this buffer."""
        return self.base_address <= address < self.base_address + self.size_bytes


@dataclass
class LinearPredicate:
    """An affine predicate ``sum(coeff_i * var_i) + const  OP  0``."""

    coeffs: Dict[str, int]
    const: int
    op: str  # one of lt, le, gt, ge, eq, ne

    _OPS = {
        "lt": np.less,
        "le": np.less_equal,
        "gt": np.greater,
        "ge": np.greater_equal,
        "eq": np.equal,
        "ne": np.not_equal,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown predicate operator {self.op!r}")

    def variables(self) -> Tuple[str, ...]:
        """Loop variables referenced by the predicate."""
        return tuple(sorted(self.coeffs))

    def evaluate(self, env: Dict[str, np.ndarray]) -> np.ndarray:
        """Evaluate the predicate for vectors of loop-variable values."""
        value: Union[int, np.ndarray] = self.const
        for var, coeff in self.coeffs.items():
            value = value + coeff * env[var]
        return self._OPS[self.op](value, 0)

    def satisfaction_fraction(
        self, extents: Dict[str, int], rng: Optional[np.random.Generator] = None
    ) -> float:
        """Fraction of the iteration sub-space on which the predicate holds."""
        return predicate_fraction([self], extents, rng)


def predicate_fraction(
    predicates: Sequence[LinearPredicate],
    extents: Dict[str, int],
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of iterations satisfying *all* ``predicates``.

    The involved loop variables are enumerated exactly when the joint domain
    is small, otherwise a fixed-size uniform sample is used.
    """
    if not predicates:
        return 1.0
    variables = sorted({v for p in predicates for v in p.coeffs})
    if not variables:
        env0 = {v: np.zeros(1, dtype=np.int64) for v in variables}
        mask = np.ones(1, dtype=bool)
        for pred in predicates:
            mask &= pred.evaluate(env0)
        return float(mask[0])
    sizes = []
    for var in variables:
        if var not in extents:
            raise KeyError(f"predicate references unknown loop variable {var!r}")
        sizes.append(extents[var])
    total = 1
    for size in sizes:
        total *= size
    if total <= _MAX_ENUMERATION:
        flat = np.arange(total, dtype=np.int64)
        env = _unflatten(flat, variables, sizes)
    else:
        rng = rng or np.random.default_rng(0)
        flat = rng.integers(0, total, size=_MAX_ENUMERATION, dtype=np.int64)
        env = _unflatten(flat, variables, sizes)
    mask = np.ones(flat.shape, dtype=bool)
    for pred in predicates:
        mask &= pred.evaluate(env)
    return float(mask.mean())


def _unflatten(
    flat: np.ndarray, variables: Sequence[str], sizes: Sequence[int]
) -> Dict[str, np.ndarray]:
    env: Dict[str, np.ndarray] = {}
    divisor = np.ones_like(flat)
    for var, size in zip(reversed(list(variables)), reversed(list(sizes))):
        env[var] = (flat // divisor) % size
        divisor = divisor * size
    return env


@dataclass
class MemoryAccess:
    """One memory reference of a block, affine in the enclosing loop variables.

    The referenced element index is ``const + sum(coeff_i * var_i)``; the byte
    address adds the buffer base and scales by the element size.  ``width``
    is the number of contiguous elements touched (``> 1`` for vector
    accesses); ``gather_stride`` > 0 marks a strided gather/scatter of
    ``width`` elements.  ``predicates`` restrict the iterations on which the
    access actually happens (padding selects, split guards and
    register-promotion of loop-invariant references).
    """

    buffer: Buffer
    coeffs: Dict[str, int]
    const: int
    is_store: bool
    width: int = 1
    gather_stride: int = 0
    predicates: List[LinearPredicate] = field(default_factory=list)
    #: Extra instructions charged per performed access (address arithmetic).
    extra_counts: Dict[str, float] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Instruction category of the access."""
        if self.width > 1 and self.gather_stride == 0:
            return IC.VEC_STORE if self.is_store else IC.VEC_LOAD
        return IC.STORE if self.is_store else IC.LOAD

    def instructions_per_access(self) -> float:
        """Number of memory instructions issued each time the access executes."""
        if self.gather_stride > 0:
            return float(self.width)
        return 1.0

    def addresses_per_access(self) -> int:
        """Number of distinct addresses emitted into the trace per execution."""
        if self.gather_stride > 0:
            return self.width
        return 1


# ---------------------------------------------------------------------------
# compressed trace descriptors
# ---------------------------------------------------------------------------


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without a Python loop."""
    total = int(counts.sum())
    out = np.arange(total, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    out -= np.repeat(starts, counts)
    return out


@dataclass
class AccessRunBatch:
    """A batch of affine access runs sharing one stride and write flag.

    Run ``r`` touches byte addresses ``bases[r] + k * stride`` for
    ``k in range(counts[r])`` at trace positions
    ``first_pos[r] + k * pos_stride``.  Positions are *uncompacted* slots of
    the enclosing chunk (``iteration * slots_per_iteration + slot``): gaps
    where other accesses or predicated-out iterations sit are deliberate —
    the cache engine only relies on their relative order.

    Regular batches (the common, unclipped case) store the per-run count and
    position lattice as three scalars instead of two arrays
    (``uniform_count``, ``first_pos_start``, ``first_pos_step``); use
    :meth:`run_counts` / :meth:`run_first_pos` to materialise either form.

    **Grid batches** add replication levels on top of the stored runs: with
    ``grid_strides`` / ``grid_counts`` / ``grid_pos_strides`` set (parallel
    ``(L,)`` arrays, outer level first), every stored run is replicated once
    per grid point ``d = (d_0, …, d_{L-1})``, ``d_l in range(grid_counts[l])``,
    shifted by ``sum(grid_strides[l] * d_l)`` bytes and
    ``sum(grid_pos_strides[l] * d_l)`` trace positions.  A tiled inner window
    nested under outer loops is thereby one descriptor ``(base, strides[],
    counts[])`` instead of one run per window: the stored runs enumerate only
    the predicate-affected digit combinations, and every predicate-free loop
    variable becomes a grid level.  :meth:`degrid` expands the levels back to
    an equivalent plain run batch (the engine does this transiently, per
    innermost row, when collapsing to line heads).
    """

    bases: np.ndarray  # (R,) int64 byte address of each run's first access
    stride: int  # byte stride between consecutive accesses of a run
    pos_stride: int  # trace-position stride between consecutive accesses
    is_write: bool
    counts: Optional[np.ndarray] = None  # (R,) int64 accesses per run, all > 0
    first_pos: Optional[np.ndarray] = None  # (R,) int64 position of each run's first access
    uniform_count: int = 0  # scalar form of ``counts``
    first_pos_start: int = 0  # scalar form of ``first_pos``: start + r * step
    first_pos_step: int = 0
    grid_strides: Optional[np.ndarray] = None  # (L,) int64 byte stride per level
    grid_counts: Optional[np.ndarray] = None  # (L,) int64 grid points per level, all > 1
    grid_pos_strides: Optional[np.ndarray] = None  # (L,) int64 position stride per level

    @property
    def grid_multiplicity(self) -> int:
        """Number of grid points each stored run is replicated over."""
        if self.grid_counts is None:
            return 1
        multiplicity = 1
        for count in self.grid_counts.tolist():
            multiplicity *= count
        return multiplicity

    @property
    def total(self) -> int:
        """Number of accesses described by the batch."""
        if self.counts is not None:
            base = int(self.counts.sum())
        else:
            base = self.uniform_count * int(self.bases.size)
        return base * self.grid_multiplicity

    def run_counts(self) -> np.ndarray:
        """Per-run access counts of the stored runs, materialised."""
        if self.counts is not None:
            return self.counts
        return np.full(self.bases.size, self.uniform_count, dtype=np.int64)

    def run_first_pos(self) -> np.ndarray:
        """Per-run first trace positions of the stored runs, materialised."""
        if self.first_pos is not None:
            return self.first_pos
        return self.first_pos_start + self.first_pos_step * np.arange(
            self.bases.size, dtype=np.int64
        )

    def degrid(self) -> "AccessRunBatch":
        """An equivalent batch with the grid levels expanded into runs.

        Each stored run appears once per grid point, shifted by the level
        offsets; the result describes bit-identical members.  Plain batches
        return ``self`` unchanged.  The expansion is cached on the batch
        (batches are immutable once emitted), so repeated consumers — the
        engine collapses heads once per cache level walk — pay it once;
        callers must treat the result as read-only.
        """
        if self.grid_counts is None:
            return self
        cached = getattr(self, "_degrid_cache", None)
        if cached is not None:
            return cached
        offset_addr = np.zeros(1, dtype=np.int64)
        offset_pos = np.zeros(1, dtype=np.int64)
        for stride, count, pos_stride in zip(
            self.grid_strides.tolist(),
            self.grid_counts.tolist(),
            self.grid_pos_strides.tolist(),
        ):
            k = np.arange(count, dtype=np.int64)
            offset_addr = (offset_addr[:, None] + stride * k[None, :]).reshape(-1)
            offset_pos = (offset_pos[:, None] + pos_stride * k[None, :]).reshape(-1)
        flat = AccessRunBatch(
            bases=(offset_addr[:, None] + self.bases[None, :]).reshape(-1),
            stride=self.stride,
            pos_stride=self.pos_stride,
            is_write=self.is_write,
            first_pos=(offset_pos[:, None] + self.run_first_pos()[None, :]).reshape(-1),
        )
        if self.counts is None:
            flat.uniform_count = self.uniform_count
        else:
            flat.counts = np.tile(self.counts, offset_addr.size)
        self._degrid_cache = flat
        return flat

    def member_addresses(self) -> Tuple[np.ndarray, np.ndarray]:
        """Expand to per-access ``(addresses, positions)`` arrays."""
        if self.grid_counts is not None:
            return self.degrid().member_addresses()
        counts = self.run_counts()
        k = _ragged_arange(counts)
        addresses = np.repeat(self.bases, counts) + self.stride * k
        positions = np.repeat(self.run_first_pos(), counts) + self.pos_stride * k
        return addresses, positions

    def nbytes(self) -> int:
        """Storage footprint of the descriptor arrays."""
        size = self.bases.nbytes
        for array in (
            self.counts,
            self.first_pos,
            self.grid_strides,
            self.grid_counts,
            self.grid_pos_strides,
        ):
            if array is not None:
                size += array.nbytes
        return size


@dataclass
class DescriptorChunk:
    """One trace chunk as compressed run descriptors plus an explicit span.

    ``total`` counts the accesses actually performed; ``pos_bound`` is an
    exclusive upper bound on every trace position in the chunk (positions are
    uncompacted, so ``pos_bound >= total``).  ``addresses``/``writes``/
    ``positions`` hold an optional materialised span — the escape hatch for
    accesses a producer cannot express as affine runs.  The built-in emitter
    never needs it (predicates fold into per-window interval clipping and
    truncation clips run batches analytically), but consumers support mixed
    chunks so alternative emitters can interleave explicit members.
    """

    total: int
    pos_bound: int
    batches: List[AccessRunBatch] = field(default_factory=list)
    addresses: Optional[np.ndarray] = None  # (E,) int64 byte addresses
    writes: Optional[np.ndarray] = None  # (E,) bool
    positions: Optional[np.ndarray] = None  # (E,) int64 trace positions

    def expand(self) -> Tuple[np.ndarray, np.ndarray]:
        """Materialise the chunk as ``(addresses, is_write)`` in trace order.

        The result is bit-identical to the corresponding
        :meth:`Program.memory_trace` chunk.
        """
        parts_addr: List[np.ndarray] = []
        parts_pos: List[np.ndarray] = []
        parts_write: List[np.ndarray] = []
        for batch in self.batches:
            addresses, positions = batch.member_addresses()
            parts_addr.append(addresses)
            parts_pos.append(positions)
            parts_write.append(np.full(addresses.shape, batch.is_write, dtype=bool))
        if self.addresses is not None and self.addresses.size:
            parts_addr.append(self.addresses)
            parts_pos.append(self.positions)
            parts_write.append(self.writes)
        if not parts_addr:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=bool)
        addresses = np.concatenate(parts_addr)
        positions = np.concatenate(parts_pos)
        writes = np.concatenate(parts_write)
        # Positions are unique and bounded by pos_bound: a counting scatter
        # orders the stream in two linear passes, far cheaper than argsort —
        # unless the chunk is sparse, where argsort over the few members wins.
        if positions.size * 16 < self.pos_bound:
            order = np.argsort(positions)
        else:
            slot_of = np.full(self.pos_bound, -1, dtype=np.int64)
            slot_of[positions] = np.arange(positions.size, dtype=np.int64)
            order = slot_of[slot_of >= 0]
        return addresses[order].astype(np.uint64), writes[order]

    def truncate(self, keep: int) -> "DescriptorChunk":
        """The chunk's first ``keep`` accesses, still in descriptor form.

        The ``keep``-th smallest member position bounds the surviving
        accesses, so each run batch is clipped analytically instead of
        expanding the chunk.  Grid batches stay grids: the cutoff splits the
        outermost level into fully-kept slabs (a smaller grid) plus at most
        one partially-kept slab, which recurses one level down — so a trace
        truncated mid-grid keeps its compression.
        """
        if keep >= self.total:
            return self
        # Binary-search the cutoff (one past the ``keep``-th smallest member
        # position) on the analytic member count — positions are unique, so
        # the count is a step function and the chunk is never expanded.
        low, high = 0, max(int(self.pos_bound), 1)
        while low + 1 < high:
            mid = (low + high) // 2
            counted = sum(_count_below(batch, mid) for batch in self.batches)
            if self.positions is not None and self.positions.size:
                counted += int(np.count_nonzero(self.positions < mid))
            if counted >= keep:
                high = mid
            else:
                low = mid
        cutoff = high
        batches = []
        for batch in self.batches:
            batches.extend(_clip_batch(batch, cutoff))
        addresses = writes = span_positions = None
        if self.positions is not None and self.positions.size:
            alive = self.positions < cutoff
            addresses = self.addresses[alive]
            writes = self.writes[alive]
            span_positions = self.positions[alive]
        return DescriptorChunk(
            total=keep,
            pos_bound=cutoff,
            batches=batches,
            addresses=addresses,
            writes=writes,
            positions=span_positions,
        )

    def nbytes(self) -> int:
        """Storage footprint of the chunk (descriptors plus explicit span)."""
        size = sum(batch.nbytes() for batch in self.batches)
        for array in (self.addresses, self.writes, self.positions):
            if array is not None:
                size += array.nbytes
        return size


def _clip_runs(batch: AccessRunBatch, cutoff: int) -> Optional[AccessRunBatch]:
    """Clip a plain (grid-free) batch to member positions below ``cutoff``."""
    first_pos = batch.run_first_pos()
    counts = np.clip(-((first_pos - cutoff) // batch.pos_stride), 0, batch.run_counts())
    alive = counts > 0
    if not alive.any():
        return None
    return AccessRunBatch(
        bases=batch.bases[alive],
        stride=batch.stride,
        pos_stride=batch.pos_stride,
        is_write=batch.is_write,
        counts=counts[alive],
        first_pos=first_pos[alive],
    )


def _outer_slab_span(batch: AccessRunBatch) -> Tuple[int, int]:
    """Position range ``[lo, hi]`` of a grid batch's first outer-level slab."""
    first_pos = batch.run_first_pos()
    slab_lo = int(first_pos.min())
    slab_hi = int((first_pos + (batch.run_counts() - 1) * batch.pos_stride).max())
    for count, pos_stride in zip(
        batch.grid_counts[1:].tolist(), batch.grid_pos_strides[1:].tolist()
    ):
        step = (count - 1) * pos_stride
        slab_lo += min(0, step)
        slab_hi += max(0, step)
    return slab_lo, slab_hi


def _drop_outer_level(batch: AccessRunBatch, slabs: int) -> AccessRunBatch:
    """The sub-batch at outer-level index ``slabs``, one grid level down."""
    partial = AccessRunBatch(
        bases=batch.bases + int(batch.grid_strides[0]) * slabs,
        stride=batch.stride,
        pos_stride=batch.pos_stride,
        is_write=batch.is_write,
        counts=batch.counts,
        first_pos=batch.run_first_pos() + int(batch.grid_pos_strides[0]) * slabs,
        uniform_count=batch.uniform_count,
    )
    if batch.grid_counts.size > 1:
        partial.grid_strides = batch.grid_strides[1:]
        partial.grid_counts = batch.grid_counts[1:]
        partial.grid_pos_strides = batch.grid_pos_strides[1:]
    return partial


def _count_below(batch: AccessRunBatch, cutoff: int) -> int:
    """Number of the batch's members at trace positions below ``cutoff``.

    Grid batches are counted slab-analytically (mirroring
    :func:`_clip_batch`), so the cost is per stored run and level, not per
    member.
    """
    if batch.grid_counts is not None:
        slab_lo, slab_hi = _outer_slab_span(batch)
        outer_count = int(batch.grid_counts[0])
        outer_pos = int(batch.grid_pos_strides[0])
        if outer_pos <= slab_hi - slab_lo:
            return _count_below(batch.degrid(), cutoff)
        full = min(max((cutoff - 1 - slab_hi) // outer_pos + 1, 0), outer_count)
        counted = full * (batch.total // outer_count)
        if full < outer_count and slab_lo + full * outer_pos < cutoff:
            counted += _count_below(_drop_outer_level(batch, full), cutoff)
        return counted
    first_pos = batch.run_first_pos()
    counts = np.clip(-((first_pos - cutoff) // batch.pos_stride), 0, batch.run_counts())
    return int(counts.sum())


def _clip_batch(batch: AccessRunBatch, cutoff: int) -> List[AccessRunBatch]:
    """Clip any batch to member positions below ``cutoff``, keeping grids.

    The emitter's grid levels tile disjoint, ascending position ranges, so
    the outermost level splits into fully-kept slabs (the same grid with a
    shorter outer count) plus at most one partial slab that recurses one
    level down; only the innermost, run-level remainder is clipped per run.
    Hand-built grids whose slabs overlap in position space fall back to
    clipping the degridded runs, which is always exact.
    """
    if batch.grid_counts is None:
        clipped = _clip_runs(batch, cutoff)
        return [clipped] if clipped is not None else []
    slab_lo, slab_hi = _outer_slab_span(batch)
    outer_count = int(batch.grid_counts[0])
    outer_pos = int(batch.grid_pos_strides[0])
    if outer_pos <= slab_hi - slab_lo:
        clipped = _clip_runs(batch.degrid(), cutoff)
        return [clipped] if clipped is not None else []
    full = min(max((cutoff - 1 - slab_hi) // outer_pos + 1, 0), outer_count)
    out: List[AccessRunBatch] = []
    if full > 0:
        kept = AccessRunBatch(
            bases=batch.bases,
            stride=batch.stride,
            pos_stride=batch.pos_stride,
            is_write=batch.is_write,
            counts=batch.counts,
            first_pos=batch.first_pos,
            uniform_count=batch.uniform_count,
            first_pos_start=batch.first_pos_start,
            first_pos_step=batch.first_pos_step,
        )
        if full > 1:
            kept.grid_strides = batch.grid_strides.copy()
            kept.grid_counts = batch.grid_counts.copy()
            kept.grid_pos_strides = batch.grid_pos_strides.copy()
            kept.grid_counts[0] = full
        elif batch.grid_counts.size > 1:
            kept.grid_strides = batch.grid_strides[1:]
            kept.grid_counts = batch.grid_counts[1:]
            kept.grid_pos_strides = batch.grid_pos_strides[1:]
        out.append(kept)
    if full < outer_count and slab_lo + full * outer_pos < cutoff:
        out.extend(_clip_batch(_drop_outer_level(batch, full), cutoff))
    return out


# ---------------------------------------------------------------------------
# descriptor arenas: cross-chunk packing for the native batch pipeline
# ---------------------------------------------------------------------------

#: Number of int64 columns in :attr:`DescriptorArena.chunk_meta`.
ARENA_CHUNK_META = 7
#: Number of int64 columns in :attr:`DescriptorArena.batch_meta`.
ARENA_BATCH_META = 7


@dataclass
class DescriptorArena:
    """A batch of :class:`DescriptorChunk` objects packed into flat arenas.

    The arena is the wire format of the native descriptor pipeline
    (:mod:`repro.sim._native`): every chunk of the batch is described by
    contiguous ``int64`` arrays, so one foreign call can walk all of them
    without touching Python objects per chunk.  Grid batches are packed as
    grids — the replication levels are *not* expanded — and the packing is
    pure bookkeeping (offset arithmetic plus a handful of concatenations),
    so its cost is per batch and per chunk, never per access.

    Layout (all arrays ``int64`` unless noted, all offsets half-open):

    * ``chunk_meta[c] = (total, pos_bound, batch_start, batch_end,
      explicit_start, explicit_end, pos_stride)`` — ``pos_stride`` is the
      chunk-uniform trace-position stride of its batches (1 when the chunk
      has none).
    * ``batch_meta[b] = (is_write, stride, pos_stride, run_start, run_end,
      grid_start, grid_end)``.
    * ``bases`` / ``counts`` / ``first_pos`` — the stored runs, run-aligned
      at ``[run_start:run_end)``.  The scalar count/position forms of
      :class:`AccessRunBatch` are materialised here: the arena is a
      short-lived dispatch buffer whose size is per stored run, never per
      access, so uniform C-side indexing wins over the two extra arrays.
    * ``grids[grid_start:grid_end] = (stride, count, pos_stride)`` rows,
      outermost level first.
    * ``explicit_addresses`` / ``explicit_writes`` (bool) /
      ``explicit_positions`` — the chunks' explicit member spans,
      concatenated.

    ``chunks`` keeps the packed chunk objects so consumers without the
    native kernel can fall back to the per-chunk path, and so equivalence
    tests can replay both representations from one packing.

    ``group_bounds`` optionally partitions the packed chunks into
    contiguous **chunk groups** (half-open chunk-index offsets, one entry
    more than there are groups).  Groups give a shared arena per-candidate
    boundaries: the candidate-batch scheduler packs the chunks of many
    schedule candidates into one arena and replays each candidate's slice
    against freshly reset cache state via :meth:`group_view`, so the
    statistics and forwarded-miss streams of every candidate stay exactly
    what a dedicated per-candidate run would produce.  Every chunk-row
    offset is absolute into the shared arrays, so a view is a plain
    ``chunk_meta`` slice — no data is copied or repacked per group.
    """

    chunks: List[DescriptorChunk]
    total: int
    chunk_meta: np.ndarray
    batch_meta: np.ndarray
    bases: np.ndarray
    counts: np.ndarray
    first_pos: np.ndarray
    grids: np.ndarray
    explicit_addresses: np.ndarray
    explicit_writes: np.ndarray
    explicit_positions: np.ndarray
    #: Largest single-chunk access count — the per-chunk scratch capacity
    #: the native pipeline needs (heads never outnumber members).
    max_chunk_total: int
    #: Largest single-chunk position bound — sizes the position-scatter
    #: scratch of the native sort.
    max_pos_bound: int
    #: Deepest grid nesting of any packed batch; the native pipeline walks
    #: grids with a fixed-depth odometer and falls back past its limit.
    max_grid_levels: int
    #: Half-open chunk-index offsets of the per-candidate chunk groups
    #: (``None`` = the whole arena is one implicit group).
    group_bounds: Optional[np.ndarray] = None

    @property
    def n_chunks(self) -> int:
        """Number of packed chunks."""
        return len(self.chunks)

    @property
    def n_groups(self) -> int:
        """Number of chunk groups (1 when no boundaries were recorded)."""
        if self.group_bounds is None:
            return 1
        return int(self.group_bounds.size - 1)

    def group_view(self, group: int) -> "DescriptorArena":
        """The ``group``-th chunk group as a zero-copy arena view.

        The view shares every backing array with the parent; only
        ``chunk_meta`` (and the ``chunks`` fallback list) is sliced, which
        is sufficient because all chunk-row offsets are absolute.  The
        scratch-sizing maxima are inherited from the parent — upper bounds
        are always safe — so one scratch carve serves every group of a
        sweep.
        """
        if self.group_bounds is None:
            if group != 0:
                raise IndexError(f"arena has one implicit group, not {group + 1}")
            return self
        start, end = int(self.group_bounds[group]), int(self.group_bounds[group + 1])
        return DescriptorArena(
            chunks=self.chunks[start:end],
            total=int(self.chunk_meta[start:end, 0].sum()),
            chunk_meta=self.chunk_meta[start:end],
            batch_meta=self.batch_meta,
            bases=self.bases,
            counts=self.counts,
            first_pos=self.first_pos,
            grids=self.grids,
            explicit_addresses=self.explicit_addresses,
            explicit_writes=self.explicit_writes,
            explicit_positions=self.explicit_positions,
            max_chunk_total=self.max_chunk_total,
            max_pos_bound=self.max_pos_bound,
            max_grid_levels=self.max_grid_levels,
        )

    def group_views(self) -> Iterator["DescriptorArena"]:
        """Iterate the chunk groups in packing order (see :meth:`group_view`)."""
        for group in range(self.n_groups):
            yield self.group_view(group)


def pack_descriptor_arena(
    chunks: Sequence[DescriptorChunk],
    group_sizes: Optional[Sequence[int]] = None,
) -> DescriptorArena:
    """Pack ``chunks`` into one :class:`DescriptorArena`.

    Array data (bases, ragged counts, explicit spans) is concatenated;
    grid levels are recorded as ``(stride, count, pos_stride)`` rows rather
    than expanded.  The packed arena describes exactly the same accesses in
    exactly the same order as walking the chunks one by one.

    ``group_sizes`` optionally records per-candidate chunk-group boundaries
    (consecutive chunk counts, summing to ``len(chunks)``); the resulting
    arena exposes each group as a zero-copy slice via
    :meth:`DescriptorArena.group_view`.  Grouping only annotates the
    packing — the flat arrays are identical with or without it.
    """
    group_bounds: Optional[np.ndarray] = None
    if group_sizes is not None:
        sizes = np.asarray(list(group_sizes), dtype=np.int64)
        if sizes.size and sizes.min() < 0:
            raise ValueError("group_sizes must be non-negative")
        if int(sizes.sum()) != len(chunks):
            raise ValueError(
                f"group_sizes sum to {int(sizes.sum())}, "
                f"but {len(chunks)} chunks were packed"
            )
        group_bounds = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(sizes, dtype=np.int64)]
        )
    chunk_meta = np.zeros((len(chunks), ARENA_CHUNK_META), dtype=np.int64)
    batch_rows: List[List[int]] = []
    bases_parts: List[np.ndarray] = []
    counts_parts: List[np.ndarray] = []
    first_pos_parts: List[np.ndarray] = []
    grid_rows: List[Tuple[int, int, int]] = []
    explicit_addr_parts: List[np.ndarray] = []
    explicit_write_parts: List[np.ndarray] = []
    explicit_pos_parts: List[np.ndarray] = []
    run_at = 0
    explicit_at = 0
    total = 0
    max_chunk_total = 0
    max_pos_bound = 0
    max_grid_levels = 0
    for index, chunk in enumerate(chunks):
        batch_start = len(batch_rows)
        for batch in chunk.batches:
            n_runs = int(batch.bases.size)
            bases_parts.append(batch.bases)
            counts_parts.append(batch.run_counts())
            first_pos_parts.append(batch.run_first_pos())
            grid_start = len(grid_rows)
            if batch.grid_counts is not None:
                grid_rows.extend(
                    zip(
                        batch.grid_strides.tolist(),
                        batch.grid_counts.tolist(),
                        batch.grid_pos_strides.tolist(),
                    )
                )
                max_grid_levels = max(max_grid_levels, int(batch.grid_counts.size))
            batch_rows.append(
                [
                    int(batch.is_write),
                    int(batch.stride),
                    int(batch.pos_stride),
                    run_at,
                    run_at + n_runs,
                    grid_start,
                    len(grid_rows),
                ]
            )
            run_at += n_runs
        explicit_start = explicit_at
        if chunk.addresses is not None and chunk.addresses.size:
            explicit_addr_parts.append(chunk.addresses.astype(np.int64, copy=False))
            explicit_write_parts.append(chunk.writes)
            explicit_pos_parts.append(chunk.positions)
            explicit_at += int(chunk.addresses.size)
        pos_stride = chunk.batches[0].pos_stride if chunk.batches else 1
        chunk_meta[index] = (
            chunk.total,
            chunk.pos_bound,
            batch_start,
            len(batch_rows),
            explicit_start,
            explicit_at,
            pos_stride,
        )
        total += chunk.total
        max_chunk_total = max(max_chunk_total, chunk.total)
        max_pos_bound = max(max_pos_bound, chunk.pos_bound)

    def _concat(parts: List[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.empty(0, dtype=dtype)
        return np.ascontiguousarray(np.concatenate(parts), dtype=dtype)

    return DescriptorArena(
        chunks=list(chunks),
        total=total,
        chunk_meta=chunk_meta,
        batch_meta=np.asarray(batch_rows, dtype=np.int64).reshape(
            len(batch_rows), ARENA_BATCH_META
        ),
        bases=_concat(bases_parts, np.int64),
        counts=_concat(counts_parts, np.int64),
        first_pos=_concat(first_pos_parts, np.int64),
        grids=np.asarray(grid_rows, dtype=np.int64).reshape(len(grid_rows), 3),
        explicit_addresses=_concat(explicit_addr_parts, np.int64),
        explicit_writes=_concat(explicit_write_parts, bool),
        explicit_positions=_concat(explicit_pos_parts, np.int64),
        max_chunk_total=max_chunk_total,
        max_pos_bound=max_pos_bound,
        max_grid_levels=max_grid_levels,
        group_bounds=group_bounds,
    )


#: Window ranges narrower than this are emitted as plain per-window runs —
#: grid bookkeeping (box decomposition, level canonicalisation) cannot pay
#: off below it.
_MIN_GRID_WINDOWS = 8


class _AccessRunPlan:
    """Per access-lane decomposition of a nest into affine windows and grids.

    The flattened iteration space splits into aligned windows of ``window``
    iterations inside which the byte address is affine in the flat iteration
    index (``stride`` bytes per iteration) and every predicate is affine too,
    so predicate clipping reduces to per-window interval arithmetic.  The
    window is the largest suffix of the loop nest for which this holds; in
    the worst case it degenerates to a single iteration, which is still exact
    (one run per iteration).

    Above the window, the outer loop variables are factored into **grid run
    batches** instead of one stored run per window: the chunk's window range
    is decomposed into aligned boxes, and inside each box only the digit
    combinations of variables that appear in some predicate are enumerated
    as stored runs (their windows can clip differently), while every
    predicate-free variable becomes a grid replication level ``(stride,
    count, pos_stride)``.  A tiled inner window nested under outer loops is
    then a single descriptor; the degenerate cases (every variable
    predicate-involved, or a tiny window range) fall back to the exact
    per-window emission, so the decomposition never loses precision — only
    compression.
    """

    def __init__(
        self,
        loops: Sequence[Tuple[str, int]],
        guards: Sequence[LinearPredicate],
        access: MemoryAccess,
        lane: int,
        slot: int,
    ):
        self.is_write = access.is_store
        self.slot = slot
        elem = access.buffer.element_bytes
        predicates = list(guards) + list(access.predicates)
        index_const = access.const + lane * access.gather_stride

        window = 1
        coeff_per_iter: Optional[int] = None
        pred_per_iter: List[Optional[int]] = [None] * len(predicates)
        suffix = 0
        for var, size in reversed(list(loops)):
            if size == 1:
                suffix += 1  # the digit is always zero; absorb freely
                continue
            a = access.coeffs.get(var, 0)
            if coeff_per_iter is None:
                if a % window:
                    break
                new_coeff = a // window
            else:
                if a != coeff_per_iter * window:
                    break
                new_coeff = coeff_per_iter
            new_pred = list(pred_per_iter)
            ok = True
            for position, predicate in enumerate(predicates):
                b = predicate.coeffs.get(var, 0)
                if new_pred[position] is None:
                    if b % window:
                        ok = False
                        break
                    slope = b // window
                    if predicate.op == "ne" and slope != 0:
                        ok = False  # a sloped != splits the run interval
                        break
                    new_pred[position] = slope
                elif b != new_pred[position] * window:
                    ok = False
                    break
            if not ok:
                break
            coeff_per_iter = new_coeff
            pred_per_iter = new_pred
            window *= size
            suffix += 1

        self.window = window
        self.stride = (coeff_per_iter or 0) * elem
        self.elem = elem
        self.base_address = access.buffer.base_address
        self.index_const = index_const
        outer = list(loops)[: len(list(loops)) - suffix]
        # Inner-to-outer (divisor, size, access coeff, per-predicate coeffs)
        # for window-digit evaluation; the divisor is in window units, and
        # vars that contribute to no tracked linear form are skipped (their
        # digits never matter), which keeps the per-window cost at two
        # integer divisions per *contributing* var.
        self.outer: List[Tuple[int, int, int, List[int]]] = []
        # Outer→inner (block, size, coeff, per-predicate coeffs, is_pred) for
        # every non-trivial outer var: the grid path box-decomposes the
        # window range over these, factoring predicate-free vars into grid
        # levels and enumerating only predicate-involved digit combinations.
        dims: List[Tuple[int, int, int, List[int], bool]] = []
        divisor = 1
        for var, size in reversed(outer):
            coeff = access.coeffs.get(var, 0)
            pred_coeffs = [predicate.coeffs.get(var, 0) for predicate in predicates]
            if coeff or any(pred_coeffs):
                self.outer.append((divisor, size, coeff, pred_coeffs))
            if size > 1:
                dims.append((divisor, size, coeff, pred_coeffs, any(pred_coeffs)))
            divisor *= size
        dims.reverse()
        self.dims = dims
        self.has_free_dim = any(not is_pred for _, _, _, _, is_pred in dims)
        self.pred_slopes: List[int] = [slope or 0 for slope in pred_per_iter]
        self.pred_consts: List[int] = [predicate.const for predicate in predicates]
        self.pred_ops: List[str] = [predicate.op for predicate in predicates]

    def emit(self, start: int, stop: int, slots: int) -> List[AccessRunBatch]:
        """Run batches of this access for flat iterations ``[start, stop)``."""
        window = self.window
        w_first = start // window
        w_last = (stop - 1) // window
        if not self.has_free_dim or w_last - w_first + 1 < _MIN_GRID_WINDOWS:
            batch = self._emit_runs(
                np.arange(w_first, w_last + 1, dtype=np.int64), start, stop, slots
            )
            return [batch] if batch is not None else []
        # Chunk-edge windows cut mid-window go through the exact per-window
        # path; the aligned interior is box-decomposed into grids.
        aligned_lo = w_first + (1 if start % window else 0)
        aligned_hi = w_last + (0 if stop % window else 1)
        batches: List[AccessRunBatch] = []
        ragged: List[Tuple[int, int]] = []
        if aligned_lo > w_first:
            ragged.append((w_first, aligned_lo))
        if aligned_lo < aligned_hi:
            boxes, small = self._boxes(aligned_lo, aligned_hi)
            ragged.extend(small)
            for box in boxes:
                batch = self._emit_box(box, start, slots)
                if batch is not None:
                    batches.append(batch)
        if aligned_hi <= w_last:
            ragged.append((aligned_hi, w_last + 1))
        if ragged:
            w = np.concatenate(
                [np.arange(a, b, dtype=np.int64) for a, b in ragged]
            )
            batch = self._emit_runs(w, start, stop, slots)
            if batch is not None:
                batches.append(batch)
        return batches

    def _boxes(
        self, w_lo: int, w_hi: int
    ) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int]]]:
        """Decompose window range ``[w_lo, w_hi)`` into aligned boxes.

        A box ``(w0, level, count)`` covers the contiguous windows
        ``[w0, w0 + count * block(level))`` where ``w0`` is aligned to
        ``block(level)``: the digit at ``level`` takes ``count`` consecutive
        values while every deeper digit runs its full range, so addresses and
        predicate values are multi-affine over the box.  Ranges too small to
        benefit are returned separately for the per-window path.
        """
        boxes: List[Tuple[int, int, int]] = []
        small: List[Tuple[int, int]] = []
        dims = self.dims

        def recurse(a: int, b: int, level: int) -> None:
            if a >= b:
                return
            if level >= len(dims):  # pragma: no cover - innermost block is 1
                small.append((a, b))
                return
            block = dims[level][0]
            if a % block:
                head_end = min(b, (a // block + 1) * block)
                recurse(a, head_end, level + 1)
                a = head_end
                if a >= b:
                    return
            full = (b - a) // block
            if full:
                if full * block < _MIN_GRID_WINDOWS:
                    small.append((a, a + full * block))
                else:
                    boxes.append((a, level, full))
                a += full * block
            recurse(a, b, level + 1)

        recurse(w_lo, w_hi, 0)
        return boxes, small

    def _emit_box(
        self, box: Tuple[int, int, int], start: int, slots: int
    ) -> Optional[AccessRunBatch]:
        """One grid batch for the full windows of an aligned box."""
        w0, level, count = box
        window = self.window
        dims = self.dims
        # Constants contributed by the digits of the box origin (digits below
        # the box level are zero by alignment).
        index0 = self.index_const
        pred0 = list(self.pred_consts)
        for block, size, coeff, pred_coeffs, _ in dims:
            digit = (w0 // block) % size
            if digit:
                index0 += coeff * digit
                for position, pcoeff in enumerate(pred_coeffs):
                    if pcoeff:
                        pred0[position] += pcoeff * digit
        levels: List[Tuple[int, int, int]] = []  # (stride, count, pos_stride)
        pred_dims: List[Tuple[int, int, int, List[int]]] = []
        for index_level in range(level, len(dims)):
            block, size, coeff, pred_coeffs, is_pred = dims[index_level]
            extent = count if index_level == level else size
            if extent == 1:
                continue
            if is_pred:
                pred_dims.append((block, extent, coeff, pred_coeffs))
            else:
                levels.append((coeff * self.elem, extent, block * window * slots))
        if pred_dims:
            combos = 1
            for _, extent, _, _ in pred_dims:
                combos *= extent
            flat = np.arange(combos, dtype=np.int64)
            index = np.full(combos, index0, dtype=np.int64)
            pred_base = [np.full(combos, const, dtype=np.int64) for const in pred0]
            w_rel = np.zeros(combos, dtype=np.int64)
            for block, extent, coeff, pred_coeffs in reversed(pred_dims):
                digit = flat % extent
                flat //= extent
                if coeff:
                    index += coeff * digit
                for base, pcoeff in zip(pred_base, pred_coeffs):
                    if pcoeff:
                        base += pcoeff * digit
                w_rel += block * digit
        else:
            index = np.full(1, index0, dtype=np.int64)
            pred_base = [np.full(1, const, dtype=np.int64) for const in pred0]
            w_rel = np.zeros(1, dtype=np.int64)
        lo = np.zeros(index.shape, dtype=np.int64)
        hi = np.full(index.shape, window, dtype=np.int64)
        for base, slope, op in zip(pred_base, self.pred_slopes, self.pred_ops):
            lo, hi = _clip_interval(lo, hi, base, slope, op)
        keep = hi > lo
        if not keep.any():
            return None
        if not keep.all():
            lo, hi, index, w_rel = lo[keep], hi[keep], index[keep], w_rel[keep]
        bases = self.base_address + index * self.elem + self.stride * lo
        counts = hi - lo
        first_pos = ((w0 + w_rel) * window + lo - start) * slots + self.slot
        batch = self._pack_runs(bases, counts, first_pos, slots)
        self._attach_levels(batch, levels)
        return batch

    @staticmethod
    def _attach_levels(batch: AccessRunBatch, levels: List[Tuple[int, int, int]]) -> None:
        """Canonicalise and attach grid levels (outer→inner) to a batch.

        Adjacent levels forming one arithmetic progression (the outer level
        steps exactly one inner lattice span, in both address and position
        space) merge into a single longer level.
        """
        merged: List[Tuple[int, int, int]] = []
        for stride, count, pos_stride in levels:
            merged.append((stride, count, pos_stride))
            while len(merged) > 1:
                s_outer, c_outer, p_outer = merged[-2]
                s_inner, c_inner, p_inner = merged[-1]
                if s_outer == s_inner * c_inner and p_outer == p_inner * c_inner:
                    merged[-2:] = [(s_inner, c_outer * c_inner, p_inner)]
                else:
                    break
        if not merged:
            return
        batch.grid_strides = np.array([s for s, _, _ in merged], dtype=np.int64)
        batch.grid_counts = np.array([c for _, c, _ in merged], dtype=np.int64)
        batch.grid_pos_strides = np.array([p for _, _, p in merged], dtype=np.int64)

    def _emit_runs(
        self, w: np.ndarray, start: int, stop: int, slots: int
    ) -> Optional[AccessRunBatch]:
        """Exact per-window runs for an explicit window-index array."""
        window = self.window
        index = np.full(w.shape, self.index_const, dtype=np.int64)
        pred_base = [np.full(w.shape, const, dtype=np.int64) for const in self.pred_consts]
        for divisor, size, coeff, pred_coeffs in self.outer:
            digit = (w // divisor) % size
            if coeff:
                index += coeff * digit
            for base, pcoeff in zip(pred_base, pred_coeffs):
                if pcoeff:
                    base += pcoeff * digit
        window_start = w * window
        lo = np.maximum(start, window_start) - window_start
        hi = np.minimum(stop, window_start + window) - window_start
        for base, slope, op in zip(pred_base, self.pred_slopes, self.pred_ops):
            lo, hi = _clip_interval(lo, hi, base, slope, op)
        keep = hi > lo
        if not keep.any():
            return None
        if not keep.all():
            lo, hi, w, index = lo[keep], hi[keep], w[keep], index[keep]
        bases = self.base_address + index * self.elem + self.stride * lo
        counts = hi - lo
        first_pos = (w * window + lo - start) * slots + self.slot
        return self._pack_runs(bases, counts, first_pos, slots)

    def _pack_runs(
        self, bases: np.ndarray, counts: np.ndarray, first_pos: np.ndarray, slots: int
    ) -> AccessRunBatch:
        """Build a batch, preferring the scalar regular form when it fits."""
        batch = AccessRunBatch(
            bases=bases, stride=self.stride, pos_stride=slots, is_write=self.is_write
        )
        count0 = int(counts[0])
        step = int(first_pos[1] - first_pos[0]) if first_pos.size > 1 else 0
        if (counts == count0).all() and (
            first_pos.size < 2 or (np.diff(first_pos) == step).all()
        ):
            batch.uniform_count = count0
            batch.first_pos_start = int(first_pos[0])
            batch.first_pos_step = step
        else:
            batch.counts = counts
            batch.first_pos = first_pos
        return batch


def _ceil_div(numerator: np.ndarray, divisor: int) -> np.ndarray:
    """Elementwise ``ceil(numerator / divisor)`` (any non-zero divisor)."""
    return -((-numerator) // divisor)


def _clip_interval(
    lo: np.ndarray, hi: np.ndarray, base: np.ndarray, slope: int, op: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Restrict per-window iteration intervals to where a predicate holds.

    The predicate value at in-window iteration ``i`` is ``base + slope * i``;
    the satisfied ``i`` form an interval (``ne`` only reaches here with slope
    0, enforced by :class:`_AccessRunPlan`).
    """
    if slope == 0:
        satisfied = LinearPredicate._OPS[op](base, 0)
        return lo, np.where(satisfied, hi, lo)
    # Rewrite "base + slope*i OP 0" as bounds "slope*i >= t" / "slope*i <= t".
    lower_t = None  # slope*i >= lower_t
    upper_t = None  # slope*i <= upper_t
    if op in ("ge", "eq"):
        lower_t = -base
    if op == "gt":
        lower_t = 1 - base
    if op in ("le", "eq"):
        upper_t = -base
    if op == "lt":
        upper_t = -1 - base
    if lower_t is not None:
        if slope > 0:
            lo = np.maximum(lo, _ceil_div(lower_t, slope))
        else:
            hi = np.minimum(hi, lower_t // slope + 1)
    if upper_t is not None:
        if slope > 0:
            hi = np.minimum(hi, upper_t // slope + 1)
        else:
            lo = np.maximum(lo, _ceil_div(upper_t, slope))
    # "eq" applies both bounds; a non-divisible target leaves them crossed,
    # which is exactly the empty interval.
    return lo, hi


# ---------------------------------------------------------------------------
# program tree nodes
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """Straight-line code executed once per innermost iteration."""

    accesses: List[MemoryAccess] = field(default_factory=list)
    counts: Dict[str, float] = field(default_factory=dict)
    code_bytes: float = 0.0

    def add_count(self, category: str, amount: float = 1.0) -> None:
        """Add ``amount`` instructions of ``category`` to the block."""
        self.counts[category] = self.counts.get(category, 0.0) + amount


@dataclass
class Loop:
    """A counted loop around a single child node."""

    var: str
    extent: int
    kind: str
    body: "Node"
    #: Loop bookkeeping instructions per iteration (increment, compare, branch).
    overhead: Dict[str, float] = field(default_factory=dict)
    #: Code-size multiplier: unrolled loops replicate their body in memory.
    code_replication: int = 1


@dataclass
class Guard:
    """A conditional region: ``body`` executes only when all predicates hold."""

    predicates: List[LinearPredicate]
    body: "Node"
    #: Instructions charged for evaluating the condition, per evaluation.
    penalty: Dict[str, float] = field(default_factory=dict)


Node = Union[Loop, Guard, Block]


@dataclass
class PerfectNest:
    """A block together with its enclosing loops and guard predicates."""

    loops: List[Tuple[str, int]]
    block: Block
    guards: List[LinearPredicate]

    @property
    def iterations(self) -> int:
        """Total iteration count of the nest (ignoring guards)."""
        total = 1
        for _, extent in self.loops:
            total *= extent
        return total


# ---------------------------------------------------------------------------
# program
# ---------------------------------------------------------------------------


class Program:
    """An executable artefact: buffers plus a list of loop-nest roots."""

    #: Base address of the first buffer (an arbitrary, page-aligned location).
    BASE_ADDRESS = 0x1000_0000
    #: Alignment of each buffer in bytes.
    BUFFER_ALIGN = 4096

    def __init__(
        self,
        name: str,
        target: Target,
        buffers: Sequence[Buffer],
        roots: Sequence[Node],
        static_code_bytes: float = 512.0,
    ):
        self.name = name
        self.target = target
        self.buffers = list(buffers)
        self.roots = list(roots)
        self.static_code_bytes = static_code_bytes
        self._assign_buffer_addresses()
        self._buffers_by_name: Dict[str, Buffer] = {}
        for buffer in self.buffers:
            self._buffers_by_name.setdefault(buffer.name, buffer)
        # Programs are immutable once built; digests are computed lazily and
        # cached so memoization keys do not re-serialise the tree per lookup.
        self._content_digest: Optional[str] = None
        self._descriptor_digest: Optional[str] = None

    def _assign_buffer_addresses(self) -> None:
        address = self.BASE_ADDRESS
        for buffer in self.buffers:
            buffer.base_address = address
            aligned = (buffer.size_bytes + self.BUFFER_ALIGN - 1) // self.BUFFER_ALIGN
            address += (aligned + 1) * self.BUFFER_ALIGN

    # -- analytic instruction counting -----------------------------------
    def instruction_counts(self) -> Dict[str, float]:
        """Exact per-category instruction counts for one program execution."""
        counts: Dict[str, float] = {category: 0.0 for category in IC.ALL}
        for root in self.roots:
            self._count_node(root, 1.0, {}, counts)
        counts[IC.OTHER] += 16.0  # prologue/epilogue of the generated main()
        return counts

    def total_instructions(self) -> float:
        """Total executed instructions."""
        return float(sum(self.instruction_counts().values()))

    def _count_node(
        self,
        node: Node,
        iterations: float,
        extents: Dict[str, int],
        counts: Dict[str, float],
    ) -> None:
        if isinstance(node, Loop):
            for category, amount in node.overhead.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations * node.extent
            inner_extents = dict(extents)
            inner_extents[node.var] = node.extent
            self._count_node(node.body, iterations * node.extent, inner_extents, counts)
        elif isinstance(node, Guard):
            for category, amount in node.penalty.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations
            fraction = predicate_fraction(node.predicates, extents)
            self._count_node(node.body, iterations * fraction, extents, counts)
        elif isinstance(node, Block):
            for category, amount in node.counts.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations
            for access in node.accesses:
                fraction = predicate_fraction(access.predicates, extents)
                executed = iterations * fraction
                counts[access.category] = (
                    counts.get(access.category, 0.0) + access.instructions_per_access() * executed
                )
                for category, amount in access.extra_counts.items():
                    counts[category] = counts.get(category, 0.0) + amount * executed
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown program node {type(node).__name__}")

    # -- code footprint ---------------------------------------------------
    def code_footprint_bytes(self) -> float:
        """Approximate size of the generated machine code in bytes."""
        total = self.static_code_bytes
        for root in self.roots:
            total += self.code_bytes(root)
        return total

    def code_bytes(self, node: Node) -> float:
        """Approximate machine-code size of one program subtree in bytes."""
        if isinstance(node, Loop):
            return node.code_replication * self.code_bytes(node.body) + 12.0
        if isinstance(node, Guard):
            return self.code_bytes(node.body) + 8.0
        return node.code_bytes

    # -- content hashing ---------------------------------------------------
    def content_digest(self) -> str:
        """A stable hash of everything that determines simulation behaviour.

        Two programs with the same digest produce the same instruction counts
        and the same memory trace, so simulation results can be memoized on
        it (see :class:`repro.sim.memo.SimulationCache`).  The program *name*
        is deliberately excluded: it labels, but does not change, behaviour.
        The digest is computed once and cached — programs are treated as
        immutable after construction.
        """
        if self._content_digest is not None:
            return self._content_digest
        payload = {
            "target": self.target.name,
            "static_code_bytes": self.static_code_bytes,
            "buffers": [
                (b.name, b.size_bytes, b.element_bytes, b.base_address) for b in self.buffers
            ],
            "roots": [self._node_signature(root) for root in self.roots],
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._content_digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._content_digest

    def descriptor_digest(self) -> str:
        """A stable hash of the memory-trace structure alone.

        Unlike :meth:`content_digest` this ignores instruction counts and
        code-size bookkeeping: two programs with the same descriptor digest
        emit bit-identical memory traces (expanded or descriptor form), so
        trace-level results can be shared even across programs that differ
        only in instruction mix.  Cached like :meth:`content_digest`.
        """
        if self._descriptor_digest is not None:
            return self._descriptor_digest
        payload = {
            "buffers": [
                (b.name, b.size_bytes, b.element_bytes, b.base_address) for b in self.buffers
            ],
            "nests": [
                (
                    nest.loops,
                    [self._predicate_signature(p) for p in nest.guards],
                    [
                        (
                            access.buffer.name,
                            sorted(access.coeffs.items()),
                            access.const,
                            access.is_store,
                            access.width,
                            access.gather_stride,
                            [self._predicate_signature(p) for p in access.predicates],
                        )
                        for access in nest.block.accesses
                    ],
                )
                for nest in self.perfect_nests()
            ],
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._descriptor_digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._descriptor_digest

    @classmethod
    def _node_signature(cls, node: Node):
        if isinstance(node, Loop):
            return (
                "loop",
                node.var,
                node.extent,
                node.kind,
                sorted(node.overhead.items()),
                node.code_replication,
                cls._node_signature(node.body),
            )
        if isinstance(node, Guard):
            return (
                "guard",
                [cls._predicate_signature(p) for p in node.predicates],
                sorted(node.penalty.items()),
                cls._node_signature(node.body),
            )
        if isinstance(node, Block):
            return (
                "block",
                sorted(node.counts.items()),
                node.code_bytes,
                [
                    (
                        access.buffer.name,
                        sorted(access.coeffs.items()),
                        access.const,
                        access.is_store,
                        access.width,
                        access.gather_stride,
                        [cls._predicate_signature(p) for p in access.predicates],
                        sorted(access.extra_counts.items()),
                    )
                    for access in node.accesses
                ],
            )
        raise TypeError(f"unknown program node {type(node).__name__}")  # pragma: no cover

    @staticmethod
    def _predicate_signature(predicate: LinearPredicate):
        return (sorted(predicate.coeffs.items()), predicate.const, predicate.op)

    # -- perfect-nest decomposition and trace generation ------------------
    def perfect_nests(self) -> List[PerfectNest]:
        """Decompose the program into perfect nests in execution order."""
        nests: List[PerfectNest] = []
        for root in self.roots:
            self._collect_nests(root, [], [], nests)
        return nests

    def _collect_nests(
        self,
        node: Node,
        loops: List[Tuple[str, int]],
        guards: List[LinearPredicate],
        out: List[PerfectNest],
    ) -> None:
        if isinstance(node, Loop):
            self._collect_nests(node.body, loops + [(node.var, node.extent)], guards, out)
        elif isinstance(node, Guard):
            self._collect_nests(node.body, loops, guards + list(node.predicates), out)
        elif isinstance(node, Block):
            out.append(PerfectNest(loops=list(loops), block=node, guards=list(guards)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown program node {type(node).__name__}")

    def memory_trace(
        self,
        chunk_iterations: int = 1 << 16,
        max_accesses: Optional[int] = None,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield the data-memory reference trace as ``(addresses, is_write)`` chunks.

        The trace is generated in program order.  ``sample_fraction`` < 1
        keeps only a systematic sample of iteration chunks (used to bound the
        cost of cache simulation for large kernels); ``max_accesses`` stops
        the trace early once the budget is exhausted.

        With ``sample_fraction`` of 1 the concatenated trace is independent
        of ``chunk_iterations``; sampled traces are chunk-size dependent
        because whole chunks are kept or dropped (pin ``chunk_iterations``
        explicitly when reproducing sampled runs).  The default matches
        :class:`repro.sim.cpu.TraceOptions`.
        """
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        emitted = 0
        rng = np.random.default_rng(seed)
        for nest in self.perfect_nests():
            nest_trace = self._nest_trace(nest, chunk_iterations, sample_fraction, rng)
            for addresses, is_write in nest_trace:
                if max_accesses is not None and emitted + addresses.size > max_accesses:
                    keep = max_accesses - emitted
                    if keep > 0:
                        yield addresses[:keep], is_write[:keep]
                        emitted += keep
                    return
                emitted += addresses.size
                yield addresses, is_write

    def _nest_trace(
        self,
        nest: PerfectNest,
        chunk_iterations: int,
        sample_fraction: float,
        rng: np.random.Generator,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        block = nest.block
        if not block.accesses:
            return
        variables = [var for var, _ in nest.loops]
        sizes = [extent for _, extent in nest.loops]
        total = nest.iterations
        element_bytes = [access.buffer.element_bytes for access in block.accesses]

        start = 0
        while start < total:
            stop = min(start + chunk_iterations, total)
            if sample_fraction < 1.0 and rng.random() > sample_fraction:
                start = stop
                continue
            flat = np.arange(start, stop, dtype=np.int64)
            env = _unflatten(flat, variables, sizes) if variables else {}
            guard_mask = np.ones(flat.shape, dtype=bool)
            for predicate in nest.guards:
                guard_mask &= predicate.evaluate(env)

            chunk_addresses: List[np.ndarray] = []
            chunk_writes: List[np.ndarray] = []
            chunk_valid: List[np.ndarray] = []
            for access, elem_bytes in zip(block.accesses, element_bytes):
                index = np.full(flat.shape, access.const, dtype=np.int64)
                for var, coeff in access.coeffs.items():
                    index += coeff * env[var]
                base = access.buffer.base_address
                mask = guard_mask.copy()
                for predicate in access.predicates:
                    mask &= predicate.evaluate(env)
                if access.gather_stride > 0:
                    for lane in range(access.width):
                        chunk_addresses.append(
                            base + (index + lane * access.gather_stride) * elem_bytes
                        )
                        chunk_writes.append(
                            np.full(flat.shape, access.is_store, dtype=bool)
                        )
                        chunk_valid.append(mask)
                else:
                    chunk_addresses.append(base + index * elem_bytes)
                    chunk_writes.append(np.full(flat.shape, access.is_store, dtype=bool))
                    chunk_valid.append(mask)

            addresses = np.stack(chunk_addresses, axis=1).reshape(-1)
            writes = np.stack(chunk_writes, axis=1).reshape(-1)
            valid = np.stack(chunk_valid, axis=1).reshape(-1)
            if valid.all():
                yield addresses.astype(np.uint64), writes
            elif valid.any():
                yield addresses[valid].astype(np.uint64), writes[valid]
            # An all-masked chunk yields nothing, mirroring the descriptor
            # stream, which skips empty chunks entirely.
            start = stop

    def memory_trace_descriptors(
        self,
        chunk_iterations: int = 1 << 16,
        max_accesses: Optional[int] = None,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ) -> Iterator[DescriptorChunk]:
        """Yield the trace as compressed :class:`DescriptorChunk` objects.

        The descriptor stream describes exactly the trace of
        :meth:`memory_trace` with the same options: chunk boundaries,
        sampling decisions (the same RNG draws are consumed) and
        ``max_accesses`` truncation all match, and ``chunk.expand()``
        reproduces the corresponding address chunk bit for bit.  Affine
        accesses are emitted as ``(base, stride, count)`` run batches without
        materialising addresses; predicates are folded into per-window
        interval clipping, so even guarded and scalar-promoted accesses stay
        in descriptor form (only truncation boundaries fall back to an
        explicit span inside the stream).
        """
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        emitted = 0
        rng = np.random.default_rng(seed)
        for nest in self.perfect_nests():
            for chunk in self._nest_descriptors(nest, chunk_iterations, sample_fraction, rng):
                if max_accesses is not None and emitted + chunk.total > max_accesses:
                    keep = max_accesses - emitted
                    if keep > 0:
                        yield chunk.truncate(keep)
                    return
                emitted += chunk.total
                yield chunk

    def _nest_descriptors(
        self,
        nest: PerfectNest,
        chunk_iterations: int,
        sample_fraction: float,
        rng: np.random.Generator,
    ) -> Iterator[DescriptorChunk]:
        block = nest.block
        if not block.accesses:
            return
        slots = sum(access.addresses_per_access() for access in block.accesses)
        plans: List[_AccessRunPlan] = []
        slot = 0
        for access in block.accesses:
            lanes = access.width if access.gather_stride > 0 else 1
            for lane in range(lanes):
                plans.append(_AccessRunPlan(nest.loops, nest.guards, access, lane, slot))
                slot += 1
        total = nest.iterations
        start = 0
        while start < total:
            stop = min(start + chunk_iterations, total)
            if sample_fraction < 1.0 and rng.random() > sample_fraction:
                start = stop
                continue
            batches = []
            for plan in plans:
                batches.extend(plan.emit(start, stop, slots))
            total_accesses = sum(batch.total for batch in batches)
            if total_accesses == 0:
                # Every plan's windows are masked out: skip the chunk rather
                # than dispatching the engine on an empty descriptor (the
                # expanded path skips the matching all-masked chunk too).
                start = stop
                continue
            yield DescriptorChunk(
                total=total_accesses,
                pos_bound=(stop - start) * slots,
                batches=batches,
            )
            start = stop

    # -- convenience ------------------------------------------------------
    def buffer_by_name(self, name: str) -> Buffer:
        """Look up a buffer by name (dict-backed, built at construction)."""
        try:
            return self._buffers_by_name[name]
        except KeyError:
            raise KeyError(f"no buffer named {name!r}") from None

    def __repr__(self) -> str:
        return (
            f"Program({self.name}, target={self.target.name}, "
            f"buffers={[b.name for b in self.buffers]})"
        )

"""Abstract instruction programs: the executable artefact of code generation.

A :class:`Program` is a tree of :class:`Loop`, :class:`Guard` and
:class:`Block` nodes.  Each block records the instruction mix of one innermost
iteration and the memory references it performs, expressed as affine access
descriptors over the enclosing loop variables.  From this representation the
simulator derives exact instruction counts analytically and generates the
memory reference trace in vectorised chunks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.codegen.isa import InstructionCategory as IC
from repro.codegen.target import Target

#: Maximum number of points enumerated exactly when computing the fraction of
#: iterations that satisfy a predicate; larger domains are sampled.
_MAX_ENUMERATION = 1 << 20


# ---------------------------------------------------------------------------
# buffers and access descriptors
# ---------------------------------------------------------------------------


@dataclass
class Buffer:
    """A contiguous memory region backing one tensor."""

    name: str
    size_bytes: int
    element_bytes: int
    base_address: int = 0

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this buffer."""
        return self.base_address <= address < self.base_address + self.size_bytes


@dataclass
class LinearPredicate:
    """An affine predicate ``sum(coeff_i * var_i) + const  OP  0``."""

    coeffs: Dict[str, int]
    const: int
    op: str  # one of lt, le, gt, ge, eq, ne

    _OPS = {
        "lt": np.less,
        "le": np.less_equal,
        "gt": np.greater,
        "ge": np.greater_equal,
        "eq": np.equal,
        "ne": np.not_equal,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown predicate operator {self.op!r}")

    def variables(self) -> Tuple[str, ...]:
        """Loop variables referenced by the predicate."""
        return tuple(sorted(self.coeffs))

    def evaluate(self, env: Dict[str, np.ndarray]) -> np.ndarray:
        """Evaluate the predicate for vectors of loop-variable values."""
        value: Union[int, np.ndarray] = self.const
        for var, coeff in self.coeffs.items():
            value = value + coeff * env[var]
        return self._OPS[self.op](value, 0)

    def satisfaction_fraction(self, extents: Dict[str, int], rng: Optional[np.random.Generator] = None) -> float:
        """Fraction of the iteration sub-space on which the predicate holds."""
        return predicate_fraction([self], extents, rng)


def predicate_fraction(
    predicates: Sequence[LinearPredicate],
    extents: Dict[str, int],
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Fraction of iterations satisfying *all* ``predicates``.

    The involved loop variables are enumerated exactly when the joint domain
    is small, otherwise a fixed-size uniform sample is used.
    """
    if not predicates:
        return 1.0
    variables = sorted({v for p in predicates for v in p.coeffs})
    if not variables:
        env0 = {v: np.zeros(1, dtype=np.int64) for v in variables}
        mask = np.ones(1, dtype=bool)
        for pred in predicates:
            mask &= pred.evaluate(env0)
        return float(mask[0])
    sizes = []
    for var in variables:
        if var not in extents:
            raise KeyError(f"predicate references unknown loop variable {var!r}")
        sizes.append(extents[var])
    total = 1
    for size in sizes:
        total *= size
    if total <= _MAX_ENUMERATION:
        flat = np.arange(total, dtype=np.int64)
        env = _unflatten(flat, variables, sizes)
    else:
        rng = rng or np.random.default_rng(0)
        flat = rng.integers(0, total, size=_MAX_ENUMERATION, dtype=np.int64)
        env = _unflatten(flat, variables, sizes)
    mask = np.ones(flat.shape, dtype=bool)
    for pred in predicates:
        mask &= pred.evaluate(env)
    return float(mask.mean())


def _unflatten(flat: np.ndarray, variables: Sequence[str], sizes: Sequence[int]) -> Dict[str, np.ndarray]:
    env: Dict[str, np.ndarray] = {}
    divisor = np.ones_like(flat)
    for var, size in zip(reversed(list(variables)), reversed(list(sizes))):
        env[var] = (flat // divisor) % size
        divisor = divisor * size
    return env


@dataclass
class MemoryAccess:
    """One memory reference of a block, affine in the enclosing loop variables.

    The referenced element index is ``const + sum(coeff_i * var_i)``; the byte
    address adds the buffer base and scales by the element size.  ``width``
    is the number of contiguous elements touched (``> 1`` for vector
    accesses); ``gather_stride`` > 0 marks a strided gather/scatter of
    ``width`` elements.  ``predicates`` restrict the iterations on which the
    access actually happens (padding selects, split guards and
    register-promotion of loop-invariant references).
    """

    buffer: Buffer
    coeffs: Dict[str, int]
    const: int
    is_store: bool
    width: int = 1
    gather_stride: int = 0
    predicates: List[LinearPredicate] = field(default_factory=list)
    #: Extra instructions charged per performed access (address arithmetic).
    extra_counts: Dict[str, float] = field(default_factory=dict)

    @property
    def category(self) -> str:
        """Instruction category of the access."""
        if self.width > 1 and self.gather_stride == 0:
            return IC.VEC_STORE if self.is_store else IC.VEC_LOAD
        return IC.STORE if self.is_store else IC.LOAD

    def instructions_per_access(self) -> float:
        """Number of memory instructions issued each time the access executes."""
        if self.gather_stride > 0:
            return float(self.width)
        return 1.0

    def addresses_per_access(self) -> int:
        """Number of distinct addresses emitted into the trace per execution."""
        if self.gather_stride > 0:
            return self.width
        return 1


# ---------------------------------------------------------------------------
# program tree nodes
# ---------------------------------------------------------------------------


@dataclass
class Block:
    """Straight-line code executed once per innermost iteration."""

    accesses: List[MemoryAccess] = field(default_factory=list)
    counts: Dict[str, float] = field(default_factory=dict)
    code_bytes: float = 0.0

    def add_count(self, category: str, amount: float = 1.0) -> None:
        """Add ``amount`` instructions of ``category`` to the block."""
        self.counts[category] = self.counts.get(category, 0.0) + amount


@dataclass
class Loop:
    """A counted loop around a single child node."""

    var: str
    extent: int
    kind: str
    body: "Node"
    #: Loop bookkeeping instructions per iteration (increment, compare, branch).
    overhead: Dict[str, float] = field(default_factory=dict)
    #: Code-size multiplier: unrolled loops replicate their body in memory.
    code_replication: int = 1


@dataclass
class Guard:
    """A conditional region: ``body`` executes only when all predicates hold."""

    predicates: List[LinearPredicate]
    body: "Node"
    #: Instructions charged for evaluating the condition, per evaluation.
    penalty: Dict[str, float] = field(default_factory=dict)


Node = Union[Loop, Guard, Block]


@dataclass
class PerfectNest:
    """A block together with its enclosing loops and guard predicates."""

    loops: List[Tuple[str, int]]
    block: Block
    guards: List[LinearPredicate]

    @property
    def iterations(self) -> int:
        """Total iteration count of the nest (ignoring guards)."""
        total = 1
        for _, extent in self.loops:
            total *= extent
        return total


# ---------------------------------------------------------------------------
# program
# ---------------------------------------------------------------------------


class Program:
    """An executable artefact: buffers plus a list of loop-nest roots."""

    #: Base address of the first buffer (an arbitrary, page-aligned location).
    BASE_ADDRESS = 0x1000_0000
    #: Alignment of each buffer in bytes.
    BUFFER_ALIGN = 4096

    def __init__(
        self,
        name: str,
        target: Target,
        buffers: Sequence[Buffer],
        roots: Sequence[Node],
        static_code_bytes: float = 512.0,
    ):
        self.name = name
        self.target = target
        self.buffers = list(buffers)
        self.roots = list(roots)
        self.static_code_bytes = static_code_bytes
        self._assign_buffer_addresses()

    def _assign_buffer_addresses(self) -> None:
        address = self.BASE_ADDRESS
        for buffer in self.buffers:
            buffer.base_address = address
            aligned = (buffer.size_bytes + self.BUFFER_ALIGN - 1) // self.BUFFER_ALIGN
            address += (aligned + 1) * self.BUFFER_ALIGN

    # -- analytic instruction counting -----------------------------------
    def instruction_counts(self) -> Dict[str, float]:
        """Exact per-category instruction counts for one program execution."""
        counts: Dict[str, float] = {category: 0.0 for category in IC.ALL}
        for root in self.roots:
            self._count_node(root, 1.0, {}, counts)
        counts[IC.OTHER] += 16.0  # prologue/epilogue of the generated main()
        return counts

    def total_instructions(self) -> float:
        """Total executed instructions."""
        return float(sum(self.instruction_counts().values()))

    def _count_node(
        self,
        node: Node,
        iterations: float,
        extents: Dict[str, int],
        counts: Dict[str, float],
    ) -> None:
        if isinstance(node, Loop):
            for category, amount in node.overhead.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations * node.extent
            inner_extents = dict(extents)
            inner_extents[node.var] = node.extent
            self._count_node(node.body, iterations * node.extent, inner_extents, counts)
        elif isinstance(node, Guard):
            for category, amount in node.penalty.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations
            fraction = predicate_fraction(node.predicates, extents)
            self._count_node(node.body, iterations * fraction, extents, counts)
        elif isinstance(node, Block):
            for category, amount in node.counts.items():
                counts[category] = counts.get(category, 0.0) + amount * iterations
            for access in node.accesses:
                fraction = predicate_fraction(access.predicates, extents)
                executed = iterations * fraction
                counts[access.category] = (
                    counts.get(access.category, 0.0) + access.instructions_per_access() * executed
                )
                for category, amount in access.extra_counts.items():
                    counts[category] = counts.get(category, 0.0) + amount * executed
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown program node {type(node).__name__}")

    # -- code footprint ---------------------------------------------------
    def code_footprint_bytes(self) -> float:
        """Approximate size of the generated machine code in bytes."""
        total = self.static_code_bytes
        for root in self.roots:
            total += self.code_bytes(root)
        return total

    def code_bytes(self, node: Node) -> float:
        """Approximate machine-code size of one program subtree in bytes."""
        if isinstance(node, Loop):
            return node.code_replication * self.code_bytes(node.body) + 12.0
        if isinstance(node, Guard):
            return self.code_bytes(node.body) + 8.0
        return node.code_bytes

    # -- content hashing ---------------------------------------------------
    def content_digest(self) -> str:
        """A stable hash of everything that determines simulation behaviour.

        Two programs with the same digest produce the same instruction counts
        and the same memory trace, so simulation results can be memoized on
        it (see :class:`repro.sim.memo.SimulationCache`).  The program *name*
        is deliberately excluded: it labels, but does not change, behaviour.
        """
        payload = {
            "target": self.target.name,
            "static_code_bytes": self.static_code_bytes,
            "buffers": [
                (b.name, b.size_bytes, b.element_bytes, b.base_address) for b in self.buffers
            ],
            "roots": [self._node_signature(root) for root in self.roots],
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @classmethod
    def _node_signature(cls, node: Node):
        if isinstance(node, Loop):
            return (
                "loop",
                node.var,
                node.extent,
                node.kind,
                sorted(node.overhead.items()),
                node.code_replication,
                cls._node_signature(node.body),
            )
        if isinstance(node, Guard):
            return (
                "guard",
                [cls._predicate_signature(p) for p in node.predicates],
                sorted(node.penalty.items()),
                cls._node_signature(node.body),
            )
        if isinstance(node, Block):
            return (
                "block",
                sorted(node.counts.items()),
                node.code_bytes,
                [
                    (
                        access.buffer.name,
                        sorted(access.coeffs.items()),
                        access.const,
                        access.is_store,
                        access.width,
                        access.gather_stride,
                        [cls._predicate_signature(p) for p in access.predicates],
                        sorted(access.extra_counts.items()),
                    )
                    for access in node.accesses
                ],
            )
        raise TypeError(f"unknown program node {type(node).__name__}")  # pragma: no cover

    @staticmethod
    def _predicate_signature(predicate: LinearPredicate):
        return (sorted(predicate.coeffs.items()), predicate.const, predicate.op)

    # -- perfect-nest decomposition and trace generation ------------------
    def perfect_nests(self) -> List[PerfectNest]:
        """Decompose the program into perfect nests in execution order."""
        nests: List[PerfectNest] = []
        for root in self.roots:
            self._collect_nests(root, [], [], nests)
        return nests

    def _collect_nests(
        self,
        node: Node,
        loops: List[Tuple[str, int]],
        guards: List[LinearPredicate],
        out: List[PerfectNest],
    ) -> None:
        if isinstance(node, Loop):
            self._collect_nests(node.body, loops + [(node.var, node.extent)], guards, out)
        elif isinstance(node, Guard):
            self._collect_nests(node.body, loops, guards + list(node.predicates), out)
        elif isinstance(node, Block):
            out.append(PerfectNest(loops=list(loops), block=node, guards=list(guards)))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown program node {type(node).__name__}")

    def memory_trace(
        self,
        chunk_iterations: int = 1 << 16,
        max_accesses: Optional[int] = None,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield the data-memory reference trace as ``(addresses, is_write)`` chunks.

        The trace is generated in program order.  ``sample_fraction`` < 1
        keeps only a systematic sample of iteration chunks (used to bound the
        cost of cache simulation for large kernels); ``max_accesses`` stops
        the trace early once the budget is exhausted.

        With ``sample_fraction`` of 1 the concatenated trace is independent
        of ``chunk_iterations``; sampled traces are chunk-size dependent
        because whole chunks are kept or dropped (pin ``chunk_iterations``
        explicitly when reproducing sampled runs).  The default matches
        :class:`repro.sim.cpu.TraceOptions`.
        """
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        emitted = 0
        rng = np.random.default_rng(seed)
        for nest in self.perfect_nests():
            for addresses, is_write in self._nest_trace(nest, chunk_iterations, sample_fraction, rng):
                if max_accesses is not None and emitted + addresses.size > max_accesses:
                    keep = max_accesses - emitted
                    if keep > 0:
                        yield addresses[:keep], is_write[:keep]
                        emitted += keep
                    return
                emitted += addresses.size
                yield addresses, is_write

    def _nest_trace(
        self,
        nest: PerfectNest,
        chunk_iterations: int,
        sample_fraction: float,
        rng: np.random.Generator,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        block = nest.block
        if not block.accesses:
            return
        variables = [var for var, _ in nest.loops]
        sizes = [extent for _, extent in nest.loops]
        total = nest.iterations
        element_bytes = [access.buffer.element_bytes for access in block.accesses]

        start = 0
        while start < total:
            stop = min(start + chunk_iterations, total)
            if sample_fraction < 1.0 and rng.random() > sample_fraction:
                start = stop
                continue
            flat = np.arange(start, stop, dtype=np.int64)
            env = _unflatten(flat, variables, sizes) if variables else {}
            guard_mask = np.ones(flat.shape, dtype=bool)
            for predicate in nest.guards:
                guard_mask &= predicate.evaluate(env)

            chunk_addresses: List[np.ndarray] = []
            chunk_writes: List[np.ndarray] = []
            chunk_valid: List[np.ndarray] = []
            for access, elem_bytes in zip(block.accesses, element_bytes):
                index = np.full(flat.shape, access.const, dtype=np.int64)
                for var, coeff in access.coeffs.items():
                    index += coeff * env[var]
                base = access.buffer.base_address
                mask = guard_mask.copy()
                for predicate in access.predicates:
                    mask &= predicate.evaluate(env)
                if access.gather_stride > 0:
                    for lane in range(access.width):
                        chunk_addresses.append(
                            base + (index + lane * access.gather_stride) * elem_bytes
                        )
                        chunk_writes.append(
                            np.full(flat.shape, access.is_store, dtype=bool)
                        )
                        chunk_valid.append(mask)
                else:
                    chunk_addresses.append(base + index * elem_bytes)
                    chunk_writes.append(np.full(flat.shape, access.is_store, dtype=bool))
                    chunk_valid.append(mask)

            addresses = np.stack(chunk_addresses, axis=1).reshape(-1)
            writes = np.stack(chunk_writes, axis=1).reshape(-1)
            valid = np.stack(chunk_valid, axis=1).reshape(-1)
            if valid.all():
                yield addresses.astype(np.uint64), writes
            else:
                yield addresses[valid].astype(np.uint64), writes[valid]
            start = stop

    # -- convenience ------------------------------------------------------
    def buffer_by_name(self, name: str) -> Buffer:
        """Look up a buffer by name."""
        for buffer in self.buffers:
            if buffer.name == name:
                return buffer
        raise KeyError(f"no buffer named {name!r}")

    def __repr__(self) -> str:
        return (
            f"Program({self.name}, target={self.target.name}, "
            f"buffers={[b.name for b in self.buffers]})"
        )

"""Target boards: native execution of programs on the modelled CPUs."""

from __future__ import annotations

from typing import Dict, Optional

from repro.codegen.program import Program
from repro.hardware.measurement import MeasurementProtocol, MeasurementRecord
from repro.hardware.noise import NoiseConfig, NoiseModel
from repro.hardware.specs import CpuSpec, cpu_spec_for
from repro.hardware.timing_model import TimingBreakdown, TimingModel
from repro.sim.configs import CACHE_HIERARCHIES
from repro.sim.cpu import TraceOptions, run_data_trace
from repro.sim.hierarchy import CacheHierarchy, CacheHierarchyConfig
from repro.utils.rng import new_generator


class TargetBoard:
    """One physical device running workloads natively (stand-in).

    The board executes the same abstract programs as the simulator, but it
    produces *times*: a cycle-approximate model of the CPU's pipeline and
    memory system plus measurement noise.  It also honours the paper's
    benchmarking protocol (repetitions, cooldown, median).
    """

    def __init__(
        self,
        arch: str,
        spec: Optional[CpuSpec] = None,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        protocol: MeasurementProtocol = MeasurementProtocol(),
        trace_options: TraceOptions = TraceOptions(),
        noise_enabled: bool = True,
        seed: int = 0,
    ):
        self.arch = arch.strip().lower()
        self.spec = spec or cpu_spec_for(self.arch)
        self.hierarchy_config = hierarchy_config or CACHE_HIERARCHIES[self.arch]
        self.protocol = protocol
        self.trace_options = trace_options
        self.noise_enabled = noise_enabled
        self.seed = seed
        self.timing_model = TimingModel(self.spec)

    # -- execution ---------------------------------------------------------
    def characterize(self, program: Program) -> Dict[str, Dict[str, float]]:
        """Run the program's reference stream through the board's caches.

        Uses the same engine/trace-representation dispatch as the simulator
        (descriptor chunks by default on the vectorized engine), so board
        characterisation shares the compressed-trace fast path.
        """
        hierarchy = CacheHierarchy(
            self.hierarchy_config,
            engine=self.trace_options.engine,
            rng_seed=self.trace_options.rng_seed,
        )
        total_accesses = run_data_trace(hierarchy, program, self.trace_options)
        stats = hierarchy.stats_dict()
        stats["_meta"] = {"trace_accesses": float(total_accesses)}
        return stats

    def undisturbed_time(self, program: Program) -> TimingBreakdown:
        """Execution-time estimate without any measurement noise."""
        counts = program.instruction_counts()
        cache_stats = self.characterize(program)
        trace_accesses = cache_stats["_meta"]["trace_accesses"]
        memory_instructions = (
            counts.get("load", 0.0)
            + counts.get("store", 0.0)
            + counts.get("vec_load", 0.0)
            + counts.get("vec_store", 0.0)
        )
        trace_scale = 1.0
        if trace_accesses > 0 and memory_instructions > trace_accesses:
            trace_scale = memory_instructions / trace_accesses
        return self.timing_model.estimate(counts, cache_stats, trace_scale=trace_scale)

    def execute(self, program: Program, run_index: int = 0) -> float:
        """One noisy native execution; returns seconds."""
        breakdown = self.undisturbed_time(program)
        noise = self._noise_model(program)
        factor = noise.factors(run_index + 1, self.protocol.cooldown_s)[-1]
        return breakdown.seconds * float(factor)

    def measure(self, program: Program) -> MeasurementRecord:
        """Benchmark ``program`` with the full measurement protocol."""
        breakdown = self.undisturbed_time(program)
        noise = self._noise_model(program)
        factors = noise.factors(self.protocol.n_exe, self.protocol.cooldown_s)
        times = (breakdown.seconds * factors).tolist()
        return MeasurementRecord(
            times_s=times,
            cooldown_s=self.protocol.cooldown_s,
            discarded=self.protocol.discard_outliers,
        )

    # -- helpers -------------------------------------------------------------
    def _noise_model(self, program: Program) -> NoiseModel:
        rng = new_generator(self.seed, "board", self.arch, program.name)
        return NoiseModel(NoiseConfig.from_spec(self.spec, enabled=self.noise_enabled), rng)

    def __repr__(self) -> str:
        return f"TargetBoard({self.spec.name})"

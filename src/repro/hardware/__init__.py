"""Target-hardware substitute: cycle-approximate boards with measurement noise.

The paper measures reference run times on three physical CPUs (an AMD Ryzen 7
5800X, a Raspberry Pi 4's Cortex-A72 and a SiFive U74).  This package stands
in for those boards: a :class:`TargetBoard` executes the same abstract
instruction programs on a cycle-approximate timing model (out-of-order
overlap, per-level cache latencies, hardware prefetching, vector issue) with
realistic measurement noise (system load, thermal drift, outliers), and
applies the paper's measurement protocol (15 repetitions, 1 s cooldown,
median).

The timing model deliberately includes effects the instruction-accurate
simulator cannot see; this is what makes score prediction a learning problem
rather than an identity mapping, exactly as on real hardware.
"""

from repro.hardware.specs import CpuSpec, CPU_SPECS, cpu_spec_for
from repro.hardware.noise import NoiseModel, NoiseConfig
from repro.hardware.timing_model import TimingModel, TimingBreakdown
from repro.hardware.measurement import MeasurementProtocol, MeasurementRecord
from repro.hardware.board import TargetBoard

__all__ = [
    "CpuSpec",
    "CPU_SPECS",
    "cpu_spec_for",
    "NoiseModel",
    "NoiseConfig",
    "TimingModel",
    "TimingBreakdown",
    "MeasurementProtocol",
    "MeasurementRecord",
    "TargetBoard",
]

"""Microarchitectural descriptions of the evaluated CPUs.

The numbers are representative of the published microarchitectures (Zen 3,
Cortex-A72, SiFive U74); they do not need to be exact — the reproduction only
requires that the boards respond to schedule quality the way real CPUs do and
that the three architectures differ in the ways the paper discusses
(out-of-order depth, vector width, prefetching, clock frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CpuSpec:
    """Timing-relevant properties of one target CPU.

    Attributes
    ----------
    issue_width:
        Peak instructions issued per cycle.
    effective_ipc_factor:
        Fraction of the peak issue rate sustained on scalar integer code
        (captures in-order stalls, dependency chains, decode limits).
    mem_parallelism:
        Average number of outstanding misses the core can overlap (MLP).
    prefetch_efficiency:
        Fraction of *sequential* misses hidden by the hardware prefetcher.
    load_latency / l2_latency / l3_latency / dram_latency:
        Access latencies in cycles (to L1, L2, L3 and DRAM respectively).
    branch_mispredict_rate / branch_mispredict_penalty:
        Average misprediction rate on loop-heavy code and its cost in cycles.
    vector_issue_per_cycle:
        SIMD arithmetic instructions issued per cycle (0 for no SIMD).
    noise_sigma:
        Log-normal run-to-run variability of native measurements; the paper
        observes larger relative variability on the fast x86 machine.
    outlier_probability / outlier_scale:
        Probability and magnitude of occasional measurement outliers
        (scheduler interference, thermal events).
    """

    name: str
    arch: str
    frequency_ghz: float
    out_of_order: bool
    issue_width: float
    effective_ipc_factor: float
    mem_parallelism: float
    prefetch_efficiency: float
    load_latency: float
    l2_latency: float
    l3_latency: float
    dram_latency: float
    branch_mispredict_rate: float
    branch_mispredict_penalty: float
    fp_issue_per_cycle: float
    vector_issue_per_cycle: float
    load_issue_per_cycle: float
    store_issue_per_cycle: float
    noise_sigma: float
    outlier_probability: float
    outlier_scale: float


#: The three boards used in the paper's evaluation (Section IV).
CPU_SPECS: Dict[str, CpuSpec] = {
    "x86": CpuSpec(
        name="AMD Ryzen 7 5800X",
        arch="x86",
        frequency_ghz=2.2,
        out_of_order=True,
        issue_width=6.0,
        effective_ipc_factor=0.75,
        mem_parallelism=8.0,
        prefetch_efficiency=0.85,
        load_latency=4.0,
        l2_latency=12.0,
        l3_latency=40.0,
        dram_latency=230.0,
        branch_mispredict_rate=0.02,
        branch_mispredict_penalty=16.0,
        fp_issue_per_cycle=2.0,
        vector_issue_per_cycle=2.0,
        load_issue_per_cycle=3.0,
        store_issue_per_cycle=2.0,
        noise_sigma=0.035,
        outlier_probability=0.08,
        outlier_scale=0.18,
    ),
    "arm": CpuSpec(
        name="ARM Cortex-A72 (Raspberry Pi 4 Model B)",
        arch="arm",
        frequency_ghz=1.5,
        out_of_order=True,
        issue_width=3.0,
        effective_ipc_factor=0.65,
        mem_parallelism=4.0,
        prefetch_efficiency=0.60,
        load_latency=4.0,
        l2_latency=16.0,
        l3_latency=0.0,
        dram_latency=190.0,
        branch_mispredict_rate=0.025,
        branch_mispredict_penalty=15.0,
        fp_issue_per_cycle=1.0,
        vector_issue_per_cycle=1.0,
        load_issue_per_cycle=1.0,
        store_issue_per_cycle=1.0,
        noise_sigma=0.015,
        outlier_probability=0.05,
        outlier_scale=0.10,
    ),
    "riscv": CpuSpec(
        name="SiFive U74-MC",
        arch="riscv",
        frequency_ghz=1.2,
        out_of_order=False,
        issue_width=2.0,
        effective_ipc_factor=0.60,
        mem_parallelism=1.5,
        prefetch_efficiency=0.25,
        load_latency=3.0,
        l2_latency=21.0,
        l3_latency=0.0,
        dram_latency=166.0,
        branch_mispredict_rate=0.03,
        branch_mispredict_penalty=6.0,
        fp_issue_per_cycle=1.0,
        vector_issue_per_cycle=0.0,
        load_issue_per_cycle=1.0,
        store_issue_per_cycle=1.0,
        noise_sigma=0.012,
        outlier_probability=0.04,
        outlier_scale=0.08,
    ),
}


def cpu_spec_for(arch: str) -> CpuSpec:
    """Return the CPU specification for ``arch`` (x86/arm/riscv)."""
    key = arch.strip().lower()
    if key not in CPU_SPECS:
        raise KeyError(f"no CPU specification for architecture {arch!r}")
    return CPU_SPECS[key]

"""Measurement-noise models for native execution.

The paper motivates simulator-based autotuning partly by the
non-determinism of native measurements: background system load, cache
collisions with other processes, thermal throttling and DVFS.  The noise
model reproduces those effects as (i) log-normal run-to-run jitter,
(ii) occasional positive outliers and (iii) a slow thermal drift across the
repetitions of one benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.specs import CpuSpec


@dataclass(frozen=True)
class NoiseConfig:
    """Parameters of the measurement-noise model."""

    sigma: float
    outlier_probability: float
    outlier_scale: float
    thermal_drift: float = 0.01
    enabled: bool = True

    @staticmethod
    def from_spec(spec: CpuSpec, enabled: bool = True) -> "NoiseConfig":
        """Build the noise configuration of a CPU from its specification."""
        return NoiseConfig(
            sigma=spec.noise_sigma,
            outlier_probability=spec.outlier_probability,
            outlier_scale=spec.outlier_scale,
            enabled=enabled,
        )


class NoiseModel:
    """Samples multiplicative noise factors for repeated measurements."""

    def __init__(self, config: NoiseConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng

    def factors(self, n_samples: int, cooldown_s: float = 1.0) -> np.ndarray:
        """Noise factors for ``n_samples`` back-to-back runs of one benchmark.

        All factors are >= 1: interference and throttling only ever slow a
        measurement down relative to the undisturbed run time.  A longer
        cooldown reduces the thermal drift component.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        if not self.config.enabled:
            return np.ones(n_samples)
        jitter = np.abs(self.rng.normal(0.0, self.config.sigma, size=n_samples))
        outliers = (
            self.rng.random(n_samples) < self.config.outlier_probability
        ) * self.rng.exponential(self.config.outlier_scale, size=n_samples)
        cooling = 1.0 / (1.0 + cooldown_s)
        drift = self.config.thermal_drift * cooling * np.linspace(0.0, 1.0, n_samples)
        return 1.0 + jitter + outliers + drift

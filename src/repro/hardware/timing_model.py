"""Cycle-approximate timing model of the target CPUs.

The model converts the instruction mix and the cache behaviour of a program
into an execution-time estimate.  It intentionally captures effects the
instruction-accurate simulator does not report — issue-width limits,
out-of-order miss overlap, hardware prefetching, branch misprediction — so
that the mapping from simulator statistics to run time is architecture
specific and must be *learned*, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.codegen.isa import InstructionCategory as IC
from repro.hardware.specs import CpuSpec


@dataclass
class TimingBreakdown:
    """Cycle breakdown of one execution-time estimate."""

    issue_cycles: float
    memory_cycles: float
    branch_cycles: float
    total_cycles: float
    seconds: float

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dictionary (for experiment records)."""
        return {
            "issue_cycles": self.issue_cycles,
            "memory_cycles": self.memory_cycles,
            "branch_cycles": self.branch_cycles,
            "total_cycles": self.total_cycles,
            "seconds": self.seconds,
        }


class TimingModel:
    """Estimates execution time from instruction counts and cache statistics."""

    def __init__(self, spec: CpuSpec):
        self.spec = spec

    # -- components -------------------------------------------------------
    def issue_cycles(self, counts: Dict[str, float]) -> float:
        """Cycles needed to issue the instruction stream, ignoring memory stalls."""
        spec = self.spec
        scalar_fp = (
            counts.get(IC.FP_ADD, 0.0)
            + counts.get(IC.FP_MUL, 0.0)
            + counts.get(IC.FP_FMA, 0.0)
            + counts.get(IC.FP_OTHER, 0.0)
        )
        vector_fp = counts.get(IC.VEC_FP, 0.0)
        loads = counts.get(IC.LOAD, 0.0) + counts.get(IC.VEC_LOAD, 0.0)
        stores = counts.get(IC.STORE, 0.0) + counts.get(IC.VEC_STORE, 0.0)
        int_alu = counts.get(IC.INT_ALU, 0.0)
        branches = counts.get(IC.BRANCH, 0.0)
        other = counts.get(IC.OTHER, 0.0)

        # Each functional-unit class imposes a lower bound; the front end
        # imposes an overall issue-width bound.
        fp_bound = scalar_fp / max(spec.fp_issue_per_cycle, 1e-9)
        if spec.vector_issue_per_cycle > 0:
            fp_bound += vector_fp / spec.vector_issue_per_cycle
        else:
            fp_bound += vector_fp / max(spec.fp_issue_per_cycle, 1e-9)
        load_bound = loads / max(spec.load_issue_per_cycle, 1e-9)
        store_bound = stores / max(spec.store_issue_per_cycle, 1e-9)
        total_instructions = (
            scalar_fp + vector_fp + loads + stores + int_alu + branches + other
        )
        frontend_bound = total_instructions / (
            spec.issue_width * spec.effective_ipc_factor
        )
        return max(frontend_bound, fp_bound, load_bound, store_bound)

    def memory_cycles(self, cache_stats: Dict[str, Dict[str, float]]) -> float:
        """Stall cycles caused by cache misses, after prefetching and overlap."""
        spec = self.spec
        l1 = cache_stats.get("l1d", {})
        l2 = cache_stats.get("l2", {})
        l3 = cache_stats.get("l3")

        def misses(level: Dict[str, float]) -> float:
            return level.get("read_misses", 0.0) + level.get("write_misses", 0.0)

        def effective_misses(level: Dict[str, float]) -> float:
            raw = misses(level)
            hidden = spec.prefetch_efficiency * level.get("sequential_misses", 0.0)
            return max(raw - hidden, 0.0)

        cycles = effective_misses(l1) * spec.l2_latency
        if l3 is not None:
            cycles += effective_misses(l2) * spec.l3_latency
            cycles += effective_misses(l3) * spec.dram_latency
        else:
            cycles += effective_misses(l2) * spec.dram_latency
        # L1 hits still pay the load-to-use latency, partially pipelined.
        hits = l1.get("read_hits", 0.0) + l1.get("write_hits", 0.0)
        cycles += hits * (spec.load_latency / 8.0)
        overlap = spec.mem_parallelism if spec.out_of_order else max(spec.mem_parallelism, 1.0)
        return cycles / overlap

    def branch_cycles(self, counts: Dict[str, float]) -> float:
        """Cycles lost to branch mispredictions."""
        branches = counts.get(IC.BRANCH, 0.0)
        return branches * self.spec.branch_mispredict_rate * self.spec.branch_mispredict_penalty

    # -- combination -------------------------------------------------------
    def estimate(
        self,
        counts: Dict[str, float],
        cache_stats: Dict[str, Dict[str, float]],
        trace_scale: float = 1.0,
    ) -> TimingBreakdown:
        """Estimate run time.

        ``trace_scale`` compensates for sampled memory traces: when only a
        fraction of the reference stream was simulated, the miss counts are
        scaled back up to the full execution.
        """
        issue = self.issue_cycles(counts)
        memory = self.memory_cycles(cache_stats) * trace_scale
        branch = self.branch_cycles(counts)
        if self.spec.out_of_order:
            # Out-of-order cores overlap compute with outstanding misses.
            total = max(issue, memory) + 0.25 * min(issue, memory) + branch
        else:
            # In-order cores serialise compute and memory stalls.
            total = issue + memory + branch
        seconds = total / (self.spec.frequency_ghz * 1e9)
        return TimingBreakdown(
            issue_cycles=issue,
            memory_cycles=memory,
            branch_cycles=branch,
            total_cycles=total,
            seconds=seconds,
        )

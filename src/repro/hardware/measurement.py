"""The paper's native measurement protocol (Section IV).

Each implementation is executed ``n_exe`` = 15 times with a ``cooldown`` = 1 s
pause between repetitions; the median is the reference run time.  The record
also keeps the total wall-clock cost of benchmarking one implementation,
which is the denominator of the parallel-simulation break-even factor K
(Equation 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class MeasurementProtocol:
    """Benchmarking protocol for native execution."""

    n_exe: int = 15
    cooldown_s: float = 1.0
    discard_outliers: int = 0

    def __post_init__(self) -> None:
        if self.n_exe <= 0:
            raise ValueError("n_exe must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s cannot be negative")
        if self.discard_outliers < 0 or 2 * self.discard_outliers >= self.n_exe:
            raise ValueError("discard_outliers must leave at least one sample")


@dataclass
class MeasurementRecord:
    """Result of benchmarking one implementation natively."""

    times_s: List[float]
    cooldown_s: float
    discarded: int = 0

    @property
    def n_exe(self) -> int:
        """Number of repetitions that were run."""
        return len(self.times_s)

    @property
    def median_s(self) -> float:
        """The reference run time t_ref (median over the kept repetitions)."""
        kept = self.kept_times()
        return float(np.median(kept))

    @property
    def mean_s(self) -> float:
        """Mean of the kept repetitions."""
        return float(np.mean(self.kept_times()))

    @property
    def std_s(self) -> float:
        """Standard deviation of the kept repetitions."""
        return float(np.std(self.kept_times()))

    @property
    def min_s(self) -> float:
        """Fastest repetition."""
        return float(np.min(self.times_s))

    def kept_times(self) -> np.ndarray:
        """Repetition times after symmetric outlier removal."""
        times = np.sort(np.asarray(self.times_s, dtype=float))
        if self.discarded:
            times = times[self.discarded : len(times) - self.discarded]
        return times

    @property
    def benchmarking_seconds(self) -> float:
        """Total wall-clock cost of the protocol: (cooldown + t_ref) * N_exe.

        This matches the denominator of Equation 4 in the paper.
        """
        return (self.cooldown_s + self.median_s) * self.n_exe

    def __repr__(self) -> str:
        return (
            f"MeasurementRecord(median={self.median_s:.6f}s, n={self.n_exe}, "
            f"std={self.std_s:.6f}s)"
        )

"""Training phase of the score-predictor workflow (Figure 4-I).

Workloads are executed both on the instruction-accurate simulator and natively
on the target CPU; the paired records train one score predictor per
architecture and kernel type.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.pipeline.dataset import DatasetConfig, load_or_generate_dataset
from repro.predictor.training import PredictorDataset, ScorePredictor


@dataclass
class TrainingPhaseResult:
    """Outputs of one training phase."""

    dataset: PredictorDataset
    predictor: ScorePredictor
    arch: str
    kernel_type: str


class TrainingPhase:
    """Generates (or loads) training data and trains a score predictor."""

    def __init__(
        self,
        config: DatasetConfig,
        predictor_name: str = "xgboost",
        cache_dir: Optional[str | Path] = None,
        seed: int = 0,
    ):
        self.config = config
        self.predictor_name = predictor_name
        self.cache_dir = cache_dir
        self.seed = seed

    def run(self, verbose: bool = False) -> TrainingPhaseResult:
        """Execute the training phase end to end."""
        dataset = load_or_generate_dataset(self.config, cache_dir=self.cache_dir, verbose=verbose)
        predictor = ScorePredictor(model_name=self.predictor_name, seed=self.seed)
        predictor.fit(dataset)
        return TrainingPhaseResult(
            dataset=dataset,
            predictor=predictor,
            arch=self.config.arch,
            kernel_type=self.config.kernel_type,
        )

    @staticmethod
    def for_all_architectures(
        base_config: DatasetConfig,
        archs=("x86", "arm", "riscv"),
        predictor_name: str = "xgboost",
        cache_dir: Optional[str | Path] = None,
        verbose: bool = False,
    ) -> Dict[str, TrainingPhaseResult]:
        """Train one predictor per architecture (the paper's setup)."""
        results: Dict[str, TrainingPhaseResult] = {}
        for arch in archs:
            config = DatasetConfig(
                arch=arch,
                implementations_per_group=base_config.implementations_per_group,
                groups=base_config.groups,
                scale=base_config.scale,
                trace_max_accesses=base_config.trace_max_accesses,
                n_exe=base_config.n_exe,
                cooldown_s=base_config.cooldown_s,
                seed=base_config.seed,
                kernel_type=base_config.kernel_type,
            )
            results[arch] = TrainingPhase(
                config, predictor_name=predictor_name, cache_dir=cache_dir
            ).run(verbose=verbose)
        return results

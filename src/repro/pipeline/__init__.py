"""End-to-end workflows: dataset generation, predictor training and execution.

The package mirrors Figure 4 of the paper: a *training phase* in which
implementations are executed both on the instruction-accurate simulator and
natively on the target board, and an *execution phase* in which only the
simulator (plus the trained score predictor) is needed.  The experiment module
regenerates the paper's evaluation artefacts (Figure 5, Tables III-V, the
Equation 4 speedup ranges).
"""

from repro.pipeline.dataset import (
    DatasetConfig,
    generate_group_samples,
    generate_dataset,
    load_or_generate_dataset,
)
from repro.pipeline.training_phase import TrainingPhase, TrainingPhaseResult
from repro.pipeline.execution_phase import ExecutionPhase, ExecutionPhaseResult
from repro.pipeline.experiment import (
    ExperimentConfig,
    predictor_comparison_table,
    generalization_curves,
    speedup_summary,
    format_comparison_table,
)

__all__ = [
    "DatasetConfig",
    "generate_group_samples",
    "generate_dataset",
    "load_or_generate_dataset",
    "TrainingPhase",
    "TrainingPhaseResult",
    "ExecutionPhase",
    "ExecutionPhaseResult",
    "ExperimentConfig",
    "predictor_comparison_table",
    "generalization_curves",
    "speedup_summary",
    "format_comparison_table",
]

"""Training-dataset generation: paired simulator statistics and native run times.

For every kernel group the Auto-Scheduler's annotation sampler generates many
schedule implementations; each implementation is executed on the
instruction-accurate simulator (statistics) and on the target board (reference
run time).  Because generation is the most expensive part of the reproduction,
datasets can be cached on disk as JSON, and the per-group work — which is
fully independent (every group seeds its own sampler, simulator and board) —
runs on a :class:`~repro.sim.simulator.SimulatorPool`-style worker pool
(``threads`` by default: the simulation hot path lives inside NumPy kernels
and the compiled event kernel, both of which release the interpreter lock).
Results are assembled in group order, so parallel generation is
bit-identical to serial generation.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.autotune.sketch.auto_scheduler import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.codegen.target import Target
from repro.hardware.board import TargetBoard
from repro.hardware.measurement import MeasurementProtocol
from repro.predictor.training import PredictorDataset, TrainingSample
from repro.reliability import RetryPolicy
from repro.reliability import faults
from repro.sim.cpu import TraceOptions
from repro.sim.simulator import BatchSimulator, SimulationFailure
from repro.utils.serialization import dump_json, load_json
from repro.workloads.conv2d import Conv2DParams, conv2d_bias_relu_workload
from repro.workloads.resnet import scaled_group_params


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of one dataset-generation run."""

    arch: str
    implementations_per_group: int = 60
    groups: tuple = (0, 1, 2, 3, 4)
    scale: float = 0.2
    trace_max_accesses: int = 120_000
    n_exe: int = 15
    cooldown_s: float = 1.0
    seed: int = 0
    kernel_type: str = "conv2d_bias_relu"
    #: Cache-simulation engine ("reference"/"vectorized"); None = default.
    engine: Optional[str] = None
    #: Concurrent group workers: 0 = one per group (capped by CPU count),
    #: 1 = serial.  Parallel generation is bit-identical to serial.
    n_parallel: int = 0
    #: Worker backend for group generation: "threads" or "processes".
    backend: str = "threads"

    BACKENDS = ("threads", "processes")

    def __post_init__(self) -> None:
        if self.backend not in self.BACKENDS:
            raise ValueError(
                f"unknown dataset backend {self.backend!r}; expected one of {self.BACKENDS}"
            )

    def group_parameters(self) -> Dict[int, Conv2DParams]:
        """Conv2D parameters per group at the configured scale."""
        return {gid: scaled_group_params(gid, self.scale) for gid in self.groups}

    def cache_key(self) -> str:
        """A stable hash identifying this configuration."""
        payload = json.dumps(
            {
                "arch": self.arch,
                "implementations_per_group": self.implementations_per_group,
                "groups": list(self.groups),
                "scale": self.scale,
                "trace_max_accesses": self.trace_max_accesses,
                "n_exe": self.n_exe,
                "cooldown_s": self.cooldown_s,
                "seed": self.seed,
                "kernel_type": self.kernel_type,
                # NOTE: the engine and the worker configuration are
                # deliberately excluded from the cache key: both engines
                # produce bit-identical statistics and group generation is
                # order-independent, so a dataset generated under any
                # engine/parallelism setting is valid for all of them.
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class GroupFailure:
    """Record of one kernel group that could not be generated."""

    group_id: int
    error: str
    attempts: int = 1


class DatasetGenerationError(RuntimeError):
    """Some groups failed after retries; the rest of the dataset survived.

    ``failures`` lists one :class:`GroupFailure` per failed group;
    ``dataset`` holds the partial :class:`PredictorDataset` assembled from
    every group that did succeed.
    """

    def __init__(self, failures: List[GroupFailure], dataset: PredictorDataset):
        detail = "; ".join(
            f"group {failure.group_id}: {failure.error} "
            f"({failure.attempts} attempt(s))"
            for failure in failures
        )
        super().__init__(
            f"{len(failures)} group(s) failed during dataset generation: {detail}"
        )
        self.failures = failures
        self.dataset = dataset


def generate_group_samples(
    arch: str,
    group_id: int,
    params: Conv2DParams,
    n_implementations: int,
    seed: int = 0,
    trace_options: Optional[TraceOptions] = None,
    protocol: Optional[MeasurementProtocol] = None,
) -> List[TrainingSample]:
    """Generate paired (simulator statistics, native run time) samples for one group."""
    faults.maybe_crash_worker()
    trace_options = trace_options or TraceOptions(max_accesses=120_000)
    protocol = protocol or MeasurementProtocol()
    target = Target.from_name(arch)
    task = SearchTask(
        conv2d_bias_relu_workload,
        params.as_args(),
        target,
        name=f"conv2d_g{group_id}_{arch}",
    )
    policy = SketchPolicy(
        task,
        TuningOptions(seed=seed + group_id),
        cost_model=RandomCostModel(seed=seed + group_id),
    )
    simulator = BatchSimulator(arch, trace_options=trace_options)
    board = TargetBoard(
        arch, protocol=protocol, trace_options=trace_options, seed=seed + 1000 + group_id
    )

    samples: List[TrainingSample] = []
    # Over-sample candidates: some may fail to build (they are skipped).
    candidates = policy.sample_candidates(int(n_implementations * 1.3) + 4)
    inputs, build_results = policy.build_candidates(candidates)
    buildable = [
        (index, build) for index, build in enumerate(build_results) if build.ok
    ]
    # Simulations stream back from the candidate-batch scheduler while the
    # loop measures earlier candidates on the board, so the two halves of a
    # training pair overlap instead of serialising; statistics are
    # bit-identical to per-candidate Simulator.run.  A simulation failure
    # fails the whole group, exactly like a raising per-candidate run —
    # group-level containment and retries live in generate_dataset.
    simulations = simulator.iter_batch(
        [build.program for _, build in buildable], retry=RetryPolicy()
    )
    for (index, build), simulation in zip(buildable, simulations):
        if len(samples) >= n_implementations:
            break
        if isinstance(simulation, SimulationFailure):
            raise RuntimeError(
                f"simulation of candidate {index} ({simulation.program_name!r}) "
                f"failed ({simulation.kind}): {simulation.error}"
            )
        record = board.measure(build.program)
        samples.append(
            TrainingSample(
                group_id=group_id,
                flat_stats=simulation.flat_stats(),
                measured_time_s=record.median_s,
                implementation_id=f"{arch}_g{group_id}_i{index}",
            )
        )
    return samples


def generate_dataset(
    config: DatasetConfig,
    verbose: bool = False,
    strict: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> PredictorDataset:
    """Generate the full dataset for one architecture (all groups).

    Groups are generated concurrently on ``config.n_parallel`` workers
    (``config.backend`` selects threads or processes) and assembled in group
    order, which keeps the dataset bit-identical to a serial run.

    A failing group no longer takes down the run: its error is recorded,
    every other group completes, failed groups are re-generated serially
    per ``retry`` (``None`` reads ``REPRO_RETRY_*``; retries are disabled
    by default), and a :class:`DatasetGenerationError` — carrying the
    per-group failure records *and* the partial dataset — is raised at the
    end if any group still failed.  ``strict=True`` restores the historical
    behaviour: the first group error propagates immediately and nothing
    else is attempted.
    """
    trace_options = TraceOptions(max_accesses=config.trace_max_accesses, engine=config.engine)
    protocol = MeasurementProtocol(n_exe=config.n_exe, cooldown_s=config.cooldown_s)
    dataset = PredictorDataset(arch=config.arch, kernel_type=config.kernel_type)
    groups = list(config.group_parameters().items())
    workers = config.n_parallel if config.n_parallel > 0 else (os.cpu_count() or 1)
    workers = max(1, min(workers, len(groups)))

    def _generate(item) -> List[TrainingSample]:
        group_id, params = item
        if verbose:
            print(f"[dataset] {config.arch}: generating group {group_id} ({params})")
        return generate_group_samples(
            config.arch,
            group_id,
            params,
            config.implementations_per_group,
            seed=config.seed,
            trace_options=trace_options,
            protocol=protocol,
        )

    if strict:
        if workers == 1 or len(groups) <= 1:
            per_group = [_generate(item) for item in groups]
        elif config.backend == "processes":
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        generate_group_samples,
                        config.arch,
                        group_id,
                        params,
                        config.implementations_per_group,
                        config.seed,
                        trace_options,
                        protocol,
                    )
                    for group_id, params in groups
                ]
                per_group = [future.result() for future in futures]
        else:  # "threads"; the config validates the backend at construction
            with ThreadPoolExecutor(max_workers=workers) as pool:
                per_group = list(pool.map(_generate, groups))
        for samples in per_group:
            dataset.extend(samples)
        return dataset

    # Resilient path: contain per-group failures, keep generating the rest.
    per_group_opt: List[Optional[List[TrainingSample]]] = [None] * len(groups)
    failures: Dict[int, GroupFailure] = {}

    def _record(index: int, error, attempts: int = 1) -> None:
        message = (
            f"{type(error).__name__}: {error}"
            if isinstance(error, BaseException)
            else str(error)
        )
        failures[index] = GroupFailure(
            group_id=groups[index][0], error=message, attempts=attempts
        )

    if workers == 1 or len(groups) <= 1:
        for index, item in enumerate(groups):
            try:
                per_group_opt[index] = _generate(item)
            except Exception as error:  # noqa: BLE001 — containment boundary
                _record(index, error)
    elif config.backend == "processes":
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    generate_group_samples,
                    config.arch,
                    group_id,
                    params,
                    config.implementations_per_group,
                    config.seed,
                    trace_options,
                    protocol,
                )
                for group_id, params in groups
            ]
            for index, future in enumerate(futures):
                try:
                    per_group_opt[index] = future.result()
                except BrokenProcessPool:
                    # The dead worker poisons every uncollected future; each
                    # poisoned group gets its own record and a serial retry.
                    _record(index, "worker process died (broken process pool)")
                except Exception as error:  # noqa: BLE001 — containment boundary
                    _record(index, error)
    else:  # "threads"
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_generate, item) for item in groups]
            for index, future in enumerate(futures):
                try:
                    per_group_opt[index] = future.result()
                except Exception as error:  # noqa: BLE001 — containment boundary
                    _record(index, error)

    # Failed groups are re-generated serially (in the parent, away from any
    # broken pool), with deterministic backoff between attempts.
    policy = retry if retry is not None else RetryPolicy.from_env()
    for index in sorted(failures):
        attempts = failures[index].attempts
        while attempts < policy.max_attempts:
            time.sleep(policy.delay_s(attempts, key=f"group:{groups[index][0]}"))
            attempts += 1
            try:
                per_group_opt[index] = _generate(groups[index])
                del failures[index]
                break
            except Exception as error:  # noqa: BLE001 — containment boundary
                _record(index, error, attempts=attempts)

    for samples in per_group_opt:
        if samples is not None:
            dataset.extend(samples)
    if failures:
        raise DatasetGenerationError(
            [failures[index] for index in sorted(failures)], dataset
        )
    return dataset


# ---------------------------------------------------------------------------
# disk cache
# ---------------------------------------------------------------------------


def _dataset_to_jsonable(dataset: PredictorDataset) -> dict:
    return {
        "arch": dataset.arch,
        "kernel_type": dataset.kernel_type,
        "samples": [
            {
                "group_id": sample.group_id,
                "flat_stats": sample.flat_stats,
                "measured_time_s": sample.measured_time_s,
                "implementation_id": sample.implementation_id,
            }
            for sample in dataset.samples
        ],
    }


def _dataset_from_jsonable(payload: dict) -> PredictorDataset:
    dataset = PredictorDataset(arch=payload["arch"], kernel_type=payload["kernel_type"])
    for entry in payload["samples"]:
        dataset.add(
            TrainingSample(
                group_id=int(entry["group_id"]),
                flat_stats={k: float(v) for k, v in entry["flat_stats"].items()},
                measured_time_s=float(entry["measured_time_s"]),
                implementation_id=entry.get("implementation_id", ""),
            )
        )
    return dataset


def load_or_generate_dataset(
    config: DatasetConfig,
    cache_dir: Optional[str | Path] = None,
    verbose: bool = False,
) -> PredictorDataset:
    """Load a cached dataset for ``config`` or generate (and cache) it."""
    if cache_dir is None:
        return generate_dataset(config, verbose=verbose)
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    cache_file = cache_dir / f"dataset_{config.arch}_{config.cache_key()}.json"
    if cache_file.exists():
        return _dataset_from_jsonable(load_json(cache_file))
    dataset = generate_dataset(config, verbose=verbose)
    dump_json(_dataset_to_jsonable(dataset), cache_file)
    return dataset

"""Experiment orchestration: regenerates the paper's evaluation artefacts.

* :func:`predictor_comparison_table` — Tables III/IV/V (one per architecture):
  E_top1, Q_low, Q_high and R_top1 for LinReg/DNN/Bayes/XGBoost on every group.
* :func:`generalization_curves` — Figure 5: sorted run-time predictions for a
  group that is included in vs. excluded from the training data.
* :func:`speedup_summary` — the Equation 4 K ranges quoted in Section IV.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.codegen.target import Target
from repro.hardware.board import TargetBoard
from repro.metrics.evaluation import evaluate_predictions, prediction_order
from repro.metrics.speedup import SpeedupModel
from repro.predictor.training import (
    PREDICTOR_NAMES,
    PredictorDataset,
    ScorePredictor,
)
from repro.sim.cpu import TraceOptions
from repro.autotune.sketch.auto_scheduler import SearchTask, SketchPolicy, TuningOptions
from repro.autotune.sketch.cost_model import RandomCostModel
from repro.utils.rng import derive_seed
from repro.utils.tabulate import format_table
from repro.workloads.conv2d import conv2d_bias_relu_workload
from repro.workloads.resnet import scaled_group_params


@dataclass(frozen=True)
class ExperimentConfig:
    """Scale knobs of the evaluation experiments.

    ``paper()`` matches the setup of Section IV (500 implementations per
    group, 100 test samples, 10 training repetitions); ``quick()`` is a
    laptop-scale configuration with the same structure.
    """

    implementations_per_group: int = 60
    test_fraction: float = 0.2
    n_training_repeats: int = 3
    groups: tuple = (0, 1, 2, 3, 4)
    scale: float = 0.2
    trace_max_accesses: int = 120_000
    seed: int = 0
    window: str = "exact"

    @staticmethod
    def paper() -> "ExperimentConfig":
        """The paper's full-scale configuration."""
        return ExperimentConfig(
            implementations_per_group=500,
            test_fraction=0.2,
            n_training_repeats=10,
            groups=(0, 1, 2, 3, 4),
            scale=1.0,
            trace_max_accesses=400_000,
        )

    @staticmethod
    def quick() -> "ExperimentConfig":
        """A configuration that completes the whole evaluation in minutes."""
        return ExperimentConfig()


# ---------------------------------------------------------------------------
# Tables III-V: predictor comparison
# ---------------------------------------------------------------------------


def _median_test_predictions(
    dataset: PredictorDataset,
    predictor_name: str,
    config: ExperimentConfig,
) -> Dict[int, Dict[str, List[float]]]:
    """Median test-set predictions per sample, following Section IV-C.

    The predictor is trained ``n_training_repeats`` times with random
    train/test splits; for every sample the median of its (test-time)
    predicted scores is kept.  Returns, per group, parallel lists of measured
    times and median scores.
    """
    predictions: Dict[str, List[float]] = defaultdict(list)
    times: Dict[str, float] = {}
    groups_of: Dict[str, int] = {}

    for repeat in range(config.n_training_repeats):
        split_seed = derive_seed(config.seed, "comparison_split", predictor_name, repeat)
        train, test = dataset.train_test_split(config.test_fraction, seed=split_seed)
        predictor = ScorePredictor(
            model_name=predictor_name, seed=derive_seed(config.seed, predictor_name, repeat)
        )
        predictor.fit(train)
        for group_id in test.group_ids():
            group_samples = test.group(group_id)
            scores = predictor.predict_dataset(group_samples, window=config.window)
            for sample, score in zip(group_samples, scores):
                key = sample.implementation_id or id(sample)
                predictions[key].append(float(score))
                times[key] = sample.measured_time_s
                groups_of[key] = group_id

    by_group: Dict[int, Dict[str, List[float]]] = defaultdict(lambda: {"times": [], "scores": []})
    for key, scores in predictions.items():
        group_id = groups_of[key]
        by_group[group_id]["times"].append(times[key])
        by_group[group_id]["scores"].append(float(np.median(scores)))
    return by_group


def predictor_comparison_table(
    dataset: PredictorDataset,
    config: ExperimentConfig = ExperimentConfig(),
    predictor_names: Sequence[str] = PREDICTOR_NAMES,
) -> List[dict]:
    """Rows of Table III/IV/V for ``dataset``'s architecture.

    Each row is ``{"group": gid, "predictor": name, "Etop1": ..., "Qlow": ...,
    "Qhigh": ..., "Rtop1": ...}``.
    """
    rows: List[dict] = []
    for predictor_name in predictor_names:
        by_group = _median_test_predictions(dataset, predictor_name, config)
        for group_id in sorted(by_group):
            data = by_group[group_id]
            metrics = evaluate_predictions(data["times"], data["scores"])
            row = {"group": group_id, "predictor": predictor_name, "arch": dataset.arch}
            row.update(metrics.as_dict())
            rows.append(row)
    return rows


def format_comparison_table(rows: Sequence[dict], title: str = "") -> str:
    """Render comparison rows in the layout of the paper's Tables III-V."""
    predictors = sorted({row["predictor"] for row in rows}, key=PREDICTOR_NAMES.index)
    groups = sorted({row["group"] for row in rows})
    headers = ["ID"]
    for predictor in predictors:
        headers.extend(
            [f"{predictor}.Etop1", f"{predictor}.Qlow", f"{predictor}.Qhigh", f"{predictor}.Rtop1"]
        )
    table_rows = []
    index = {(row["group"], row["predictor"]): row for row in rows}
    for group in groups:
        line: List[object] = [group]
        for predictor in predictors:
            row = index.get((group, predictor))
            if row is None:
                line.extend(["-"] * 4)
            else:
                line.extend([row["Etop1"], row["Qlow"], row["Qhigh"], row["Rtop1"]])
        table_rows.append(line)
    return format_table(headers, table_rows, float_fmt=".1f", title=title)


# ---------------------------------------------------------------------------
# Figure 5: generalisation to non-trained groups
# ---------------------------------------------------------------------------


def generalization_curves(
    dataset: PredictorDataset,
    held_out_group: int = 3,
    config: ExperimentConfig = ExperimentConfig(),
    predictor_name: str = "bayes",
) -> Dict[str, Dict[str, np.ndarray]]:
    """Figure 5 data: prediction curves with the group included vs. excluded.

    Returns ``{"included": {"t_ref": ..., "t_pred": ...}, "excluded": {...}}``
    where ``t_ref`` is the ascending sorted measured run time of the test
    samples and ``t_pred`` is the measured run time ordered by predicted
    score — identical axes to the paper's Figure 5.
    """
    split_seed = derive_seed(config.seed, "fig5_split", held_out_group)
    train, test = dataset.train_test_split(config.test_fraction, seed=split_seed)
    test_samples = test.group(held_out_group)
    if not test_samples:
        raise ValueError(f"no test samples for group {held_out_group}")
    times = np.asarray([sample.measured_time_s for sample in test_samples])

    curves: Dict[str, Dict[str, np.ndarray]] = {}
    for variant in ("included", "excluded"):
        train_variant = train if variant == "included" else train.exclude_groups([held_out_group])
        predictor = ScorePredictor(
            model_name=predictor_name, seed=derive_seed(config.seed, "fig5", variant)
        )
        predictor.fit(train_variant)
        # For the excluded variant the group means cannot come from training;
        # they are approximated from the test batch itself (window behaviour).
        window = config.window if variant == "included" else "exact"
        scores = predictor.predict_dataset(test_samples, window=window)
        curves[variant] = {
            "t_ref": np.sort(times),
            "t_pred": prediction_order(times, scores),
            "metrics": evaluate_predictions(times, scores),
        }
    return curves


# ---------------------------------------------------------------------------
# Equation 4: break-even parallelism
# ---------------------------------------------------------------------------


#: Default simulation rates (host MIPS) per guest ISA.  gem5's atomic mode is
#: markedly slower for x86 (complex decode and addressing) than for the RISC
#: ISAs, which matters for the break-even factor K.
DEFAULT_SIMULATOR_MIPS = {"x86": 2.5, "arm": 5.0, "riscv": 7.0}


def speedup_summary(
    archs: Sequence[str] = ("x86", "arm", "riscv"),
    groups: Sequence[int] = (0, 1, 2, 3, 4),
    scale: float = 1.0,
    simulator_mips=None,
    n_exe: int = 15,
    cooldown_s: float = 1.0,
    trace_max_accesses: int = 150_000,
    n_schedules: int = 3,
    seed: int = 0,
) -> Dict[str, dict]:
    """K ranges (Equation 4) per architecture for the Table II workloads.

    For each group a few representative schedules are generated; the
    simulation time is estimated from the executed instruction count at
    ``simulator_mips`` (a float, or a per-architecture mapping; defaults to
    :data:`DEFAULT_SIMULATOR_MIPS`), and the native benchmarking time follows
    the paper's protocol.  Returns per-architecture dictionaries with the K
    range and the per-workload details.
    """
    if simulator_mips is None:
        simulator_mips = DEFAULT_SIMULATOR_MIPS
    trace_options = TraceOptions(max_accesses=trace_max_accesses)
    summary: Dict[str, dict] = {}
    for arch in archs:
        arch_mips = (
            simulator_mips.get(arch, 5.0)
            if isinstance(simulator_mips, dict)
            else float(simulator_mips)
        )
        model = SpeedupModel(simulator_mips=arch_mips, n_exe=n_exe, cooldown_s=cooldown_s)
        target = Target.from_name(arch)
        board = TargetBoard(arch, trace_options=trace_options, seed=seed, noise_enabled=False)
        workloads = []
        details = []
        for group_id in groups:
            params = scaled_group_params(group_id, scale)
            task = SearchTask(
                conv2d_bias_relu_workload, params.as_args(), target, name=f"eq4_g{group_id}_{arch}"
            )
            policy = SketchPolicy(
                task,
                TuningOptions(seed=derive_seed(seed, "eq4", arch, group_id)),
                cost_model=RandomCostModel(),
            )
            candidates = policy.sample_candidates(n_schedules)
            _, build_results = policy.build_candidates(candidates)
            for build in build_results:
                if not build.ok:
                    continue
                instructions = build.program.total_instructions()
                t_ref = board.undisturbed_time(build.program).seconds
                workloads.append((instructions, t_ref))
                details.append(
                    {
                        "group": group_id,
                        "instructions": instructions,
                        "t_ref_s": t_ref,
                        "K": model.k_for(instructions, t_ref),
                    }
                )
        k_min, k_max = model.k_range(workloads)
        summary[arch] = {"k_min": k_min, "k_max": k_max, "workloads": details}
    return summary

"""Execution phase of the score-predictor workflow (Figure 4-II).

Once a predictor is trained, autotuning no longer needs the target CPU: every
candidate implementation is simulated, its statistics are turned into a score
by the predictor, and the score steers the search.  Optionally, the top
predictions are re-executed on the board afterwards (the paper notes that
re-running the top 2-3 % recovers the true optimum).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.autotune.runner import SimulatorRunner
from repro.autotune.sketch.auto_scheduler import (
    MeasureRecord,
    SearchTask,
    SketchPolicy,
    TuningOptions,
)
from repro.codegen.target import Target
from repro.hardware.board import TargetBoard
from repro.predictor.training import ScorePredictor
from repro.sim.cpu import TraceOptions
from repro.te.lower import lower
from repro.codegen.codegen import build_program
from repro.workloads.conv2d import Conv2DParams, conv2d_bias_relu_workload


@dataclass
class ExecutionPhaseResult:
    """Outputs of one execution phase."""

    records: List[MeasureRecord]
    best_candidate: Optional[object]
    #: (candidate, measured seconds) for the validated top predictions, best first.
    validated: List[Tuple[object, float]] = field(default_factory=list)

    @property
    def best_validated_seconds(self) -> Optional[float]:
        """Fastest validated run time, if validation was requested."""
        if not self.validated:
            return None
        return min(seconds for _, seconds in self.validated)


class ExecutionPhase:
    """Simulator-only autotuning of one kernel group with a trained predictor."""

    def __init__(
        self,
        predictor: ScorePredictor,
        arch: str,
        params: Conv2DParams,
        n_parallel: int = 16,
        trace_options: TraceOptions = TraceOptions(max_accesses=120_000),
        options: TuningOptions = TuningOptions(num_measure_trials=48, num_measures_per_round=16),
        window: str = "dynamic",
        seed: int = 0,
    ):
        self.predictor = predictor
        self.arch = arch
        self.params = params
        self.trace_options = trace_options
        self.options = options
        self.window = window
        self.seed = seed
        self.n_parallel = n_parallel

    def run(
        self, validate_top_percent: float = 0.0, board: Optional[TargetBoard] = None
    ) -> ExecutionPhaseResult:
        """Run the simulator-guided search; optionally validate the top predictions."""
        target = Target.from_name(self.arch)
        task = SearchTask(
            conv2d_bias_relu_workload, self.params.as_args(), target, name=f"exec_{self.arch}"
        )
        runner = SimulatorRunner(
            self.arch,
            n_parallel=self.n_parallel,
            trace_options=self.trace_options,
            score_function=self.predictor.score_function(window=self.window),
        )
        policy = SketchPolicy(task, self.options)
        best = policy.search(runner=runner)
        result = ExecutionPhaseResult(records=policy.records, best_candidate=best)

        if validate_top_percent > 0.0:
            board = board or TargetBoard(
                self.arch, trace_options=self.trace_options, seed=self.seed
            )
            ranked = sorted(
                (record for record in policy.records if record.cost != float("inf")),
                key=lambda record: record.cost,
            )
            top_count = max(1, int(round(len(ranked) * validate_top_percent / 100.0)))
            for record in ranked[:top_count]:
                schedule = record.candidate.apply(task.output_tensors)
                func = lower(schedule, task.arg_tensors, name="validate")
                program = build_program(func, target, name="validate")
                measurement = board.measure(program)
                result.validated.append((record.candidate, measurement.median_s))
        return result

"""Async HTTP front door for simulation-as-a-service.

A deliberately small HTTP/1.1 layer over stdlib :mod:`asyncio` (no new
dependencies): the event loop owns connection handling, every request
handler runs on a thread pool because the interesting ones block on
simulation.  Endpoints:

* ``POST /simulate`` — body ``{"program": <base64 pickle>, "hierarchy":
  {...}?, "wait": true?}``.  Served from the result store when the digest is
  known; otherwise the miss is queued to the worker pool (``wait=true``
  blocks for the outcome, ``wait=false`` returns ``202 queued``).
  Concurrent requests for one digest coalesce onto a single computation
  through :meth:`~repro.sim.memo.SimulationCache.get_or_compute` — the
  leader simulates, twins wait, everyone gets the same bits.
* ``GET /results/{digest}`` — a stored result, a journaled failure record,
  ``202`` while the digest is still queued/leased, or ``404``.
* ``GET /stats`` — service, store, journal, cache, worker, breaker and
  per-tenant counters.
* ``GET /healthz`` — unauthenticated health probe: ``200 ok`` or ``503
  degraded`` with machine-readable reasons (worker dead, breaker open/half
  open, recent store I/O errors).

Survivability: ``wait=false`` misses are written ahead to the store's
durable job journal before the ``202`` is sent, so a crashed service
settles them on restart; the worker is supervised (dead threads restart,
leases recover); a :class:`~repro.reliability.CircuitBreaker` trips on
consecutive whole-wave faults and sheds store-miss traffic with ``503`` +
``Retry-After`` while store hits keep serving; and the miss queue is depth
bounded — saturation sheds with ``503`` instead of queueing unboundedly.

Multi-tenancy: requests carry an ``X-Api-Key`` header resolved against the
configured :class:`Tenant` table (401 on unknown keys, 429 once a tenant's
lifetime request quota is spent or its sliding-window rate limit is hot —
the rate limit resets as the window slides, the quota never does).  An
empty tenant table disables authentication — the single-user dev mode.
Programs travel as pickled payloads, which is an arbitrary-code-execution
surface by design of :mod:`pickle`: the service is built for *trusted*
tenants behind API keys, not the open internet.
"""

from __future__ import annotations

import asyncio
import base64
import json
import math
import os
import pickle
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from repro.reliability import CircuitBreaker, faults
from repro.sim.cpu import TraceOptions
from repro.sim.hierarchy import CacheHierarchyConfig, CacheLevelConfig
from repro.sim.memo import SimulationCache
from repro.sim.runtime_config import RuntimeConfig
from repro.sim.simulator import BatchSimulator, SimulationFailure
from repro.service.store import ResultStore
from repro.service.worker import SimulationWorker

#: Upper bound on accepted request bodies (pickled programs are small; a
#: multi-megabyte body is a client bug or abuse, not a schedule).
MAX_BODY_BYTES = 8 * 1024 * 1024


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, str(default)))
    except ValueError:
        return default


def _env_float(name: str, default: float) -> float:
    try:
        return float(os.environ.get(name, str(default)))
    except ValueError:
        return default


@dataclass
class Tenant:
    """One API tenant: key, display name, lifetime quota and rate limit.

    ``quota`` caps lifetime requests (0 = unlimited) and never resets;
    ``rate_limit`` caps requests per sliding ``rate_window_s`` window
    (0 = no rate limit) and frees up as the window slides past old
    requests — burst control next to the quota's budget control.
    """

    name: str
    api_key: str
    quota: int = 0
    requests: int = 0
    rate_limit: int = 0
    rate_window_s: float = 1.0
    #: Monotonic admission timestamps inside the current window.
    window: Deque[float] = field(default_factory=deque, repr=False, compare=False)


def hierarchy_from_dict(payload: dict) -> CacheHierarchyConfig:
    """Rebuild a :class:`CacheHierarchyConfig` from its ``asdict`` JSON form."""

    def level(entry) -> Optional[CacheLevelConfig]:
        if entry is None:
            return None
        return CacheLevelConfig(
            size_bytes=int(entry["size_bytes"]),
            sets=int(entry["sets"]),
            associativity=int(entry["associativity"]),
            replacement=str(entry.get("replacement", "lru")),
        )

    return CacheHierarchyConfig(
        name=str(payload["name"]),
        l1d=level(payload["l1d"]),
        l1i=level(payload["l1i"]),
        l2=level(payload["l2"]),
        l3=level(payload.get("l3")),
        line_bytes=int(payload.get("line_bytes", 64)),
    )


class _JobFailed(Exception):
    """Internal: carries a SimulationFailure out of a coalesced computation."""

    def __init__(self, failure: SimulationFailure):
        super().__init__(failure.error)
        self.failure = failure


class SimulationService:
    """The service's request logic, independent of the HTTP transport."""

    def __init__(
        self,
        arch: str,
        store: ResultStore,
        config: Optional[RuntimeConfig] = None,
        tenants: Optional[Dict[str, Tenant]] = None,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: Optional[TraceOptions] = None,
        wait_timeout_s: float = 300.0,
        max_queue_depth: Optional[int] = None,
        lease_s: Optional[float] = None,
        breaker: Optional[CircuitBreaker] = None,
        supervise: bool = True,
        io_error_window_s: float = 60.0,
    ):
        self.arch = arch
        self.store = store
        self.config = config if config is not None else RuntimeConfig()
        #: Tenants keyed by API key; empty disables authentication (dev mode).
        self.tenants = dict(tenants or {})
        self.wait_timeout_s = float(wait_timeout_s)
        #: Miss-queue bound; saturation sheds with 503 (0 = unbounded).
        self.max_queue_depth = (
            max_queue_depth
            if max_queue_depth is not None
            else _env_int("REPRO_SERVICE_QUEUE_DEPTH", 256)
        )
        #: Recent-store-trouble window for the health report.
        self.io_error_window_s = float(io_error_window_s)
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=_env_int("REPRO_SERVICE_BREAKER_THRESHOLD", 3),
            reset_timeout_s=_env_float("REPRO_SERVICE_BREAKER_RESET_S", 5.0),
        )
        self.cache = SimulationCache(store=store)
        self.simulator = BatchSimulator(
            arch,
            hierarchy_config,
            trace_options if trace_options is not None else TraceOptions(),
            memo_cache=self.cache,
            config=self.config,
        )
        self.worker = SimulationWorker(
            self.simulator,
            timeout_s=self.config.timeout_s,
            retry=self.config.resolved_retry(),
            journal=store,
            lease_s=(
                lease_s if lease_s is not None
                else _env_float("REPRO_SERVICE_LEASE_S", 30.0)
            ),
            breaker=self.breaker,
            supervise=supervise,
        )
        self.started_at = time.time()
        self.requests = 0
        self.served_cached = 0
        self.computed = 0
        self.queued = 0
        self.failed = 0
        self.shed_queue_full = 0
        self.shed_breaker = 0
        self.rate_limited = 0
        self._lock = threading.Lock()

    # -- auth ---------------------------------------------------------------
    def authenticate(
        self, api_key: Optional[str]
    ) -> Tuple[Optional[Tenant], Optional[Tuple[int, dict]]]:
        """Resolve a tenant; returns ``(tenant, None)`` or ``(None, error)``."""
        if not self.tenants:
            return None, None  # dev mode: no auth configured
        tenant = self.tenants.get(api_key or "")
        if tenant is None:
            return None, (401, {"error": "unknown or missing API key"})
        with self._lock:
            # Check-and-admit is atomic under the lock: N requests racing
            # one remaining quota slot admit exactly one.
            if tenant.quota > 0 and tenant.requests >= tenant.quota:
                return None, (
                    429,
                    {"error": f"tenant {tenant.name!r} exceeded quota {tenant.quota}"},
                )
            if tenant.rate_limit > 0:
                now = time.monotonic()
                window = tenant.window
                while window and window[0] <= now - tenant.rate_window_s:
                    window.popleft()
                if len(window) >= tenant.rate_limit:
                    self.rate_limited += 1
                    return None, (
                        429,
                        {
                            "error": (
                                f"tenant {tenant.name!r} exceeded "
                                f"{tenant.rate_limit} requests per "
                                f"{tenant.rate_window_s:g}s"
                            ),
                            "retry_after": max(
                                window[0] + tenant.rate_window_s - now, 0.0
                            ),
                        },
                    )
                window.append(now)
            tenant.requests += 1
        return tenant, None

    # -- request handlers ---------------------------------------------------
    def _digest_for(self, program, hierarchy_config) -> str:
        return SimulationCache.make_key(
            program, hierarchy_config, self.simulator.trace_options, self.simulator.engine
        )

    def _result_body(self, digest: str, flat: Dict[str, float], cached: bool,
                     program_name: str) -> dict:
        return {
            "status": "done",
            "digest": digest,
            "cached": cached,
            "program_name": program_name,
            "arch": self.arch,
            "trace_accesses": int(flat.get("sim.trace_accesses", 0.0)),
            "stats": flat,
        }

    @staticmethod
    def _failure_body(digest: str, failure: SimulationFailure) -> dict:
        return {
            "status": "failed",
            "digest": digest,
            "program_name": failure.program_name,
            "kind": failure.kind,
            "error": failure.error,
            "attempts": failure.attempts,
        }

    def _shed_miss(self) -> Optional[Tuple[int, dict]]:
        """503 shedding for store misses: breaker first, then queue depth.

        Store *hits* never come through here — a degraded backend still
        serves everything already computed.
        """
        if not self.breaker.allow():
            with self._lock:
                self.shed_breaker += 1
            return 503, {
                "error": "simulation backend unavailable (circuit breaker "
                f"{self.breaker.state})",
                "retry_after": self.breaker.retry_after_s(),
            }
        if self.max_queue_depth > 0 and self.worker.backlog() >= self.max_queue_depth:
            with self._lock:
                self.shed_queue_full += 1
            return 503, {
                "error": f"simulation queue is full ({self.max_queue_depth} jobs)",
                "retry_after": 1.0,
            }
        return None

    def handle_simulate(
        self, payload: dict, tenant: Optional[Tenant] = None
    ) -> Tuple[int, dict]:
        """``POST /simulate``: memoized result, queued miss, or failure record."""
        with self._lock:
            self.requests += 1
        try:
            program_blob = base64.b64decode(payload["program"])
            program = pickle.loads(program_blob)
        except KeyError:
            return 400, {"error": "missing required field 'program'"}
        except Exception as error:  # noqa: BLE001 — client payload boundary
            return 400, {"error": f"undecodable program payload: {error}"}
        hierarchy = self.simulator.hierarchy_config
        if payload.get("hierarchy") is not None:
            try:
                hierarchy = hierarchy_from_dict(payload["hierarchy"])
            except (KeyError, TypeError, ValueError) as error:
                return 400, {"error": f"malformed hierarchy config: {error}"}
        digest = self._digest_for(program, hierarchy)
        cached = self.cache.get(digest)
        if cached is not None:
            with self._lock:
                self.served_cached += 1
            return 200, self._result_body(digest, cached.as_dict(), True, program.name)
        shed = self._shed_miss()
        if shed is not None:
            return shed
        if not payload.get("wait", True):
            # Write-ahead: the job is durable before the 202 leaves the
            # building, so a crash between here and the worker loses nothing.
            self.store.journal_enqueue(
                digest, program_blob, tenant.name if tenant is not None else ""
            )
            with self._lock:
                self.queued += 1
            return 202, {"status": "queued", "digest": digest}

        def compute():
            # Runs on the leader only: concurrent POSTs for one digest
            # coalesce here via get_or_compute; twins block until the leader
            # settles and are served the freshly cached statistics.
            outcome = self._compute_miss(digest, program, hierarchy)
            if isinstance(outcome, SimulationFailure):
                raise _JobFailed(outcome)
            return outcome.stats

        try:
            stats, computed = self.cache.get_or_compute(digest, compute)
        except _JobFailed as error:
            with self._lock:
                self.failed += 1
            return 500, self._failure_body(digest, error.failure)
        with self._lock:
            if computed:
                self.computed += 1
            else:
                self.served_cached += 1
        return 200, self._result_body(digest, stats.as_dict(), not computed, program.name)

    def _compute_miss(self, digest: str, program, hierarchy):
        """Simulate one miss: worker wave for the service hierarchy, inline
        one-off simulation for a request-supplied hierarchy."""
        if hierarchy is self.simulator.hierarchy_config:
            return self.worker.run_sync(digest, program, self.wait_timeout_s)
        from repro.sim.simulator import Simulator, _attempt_program

        # Unmemoized on purpose: this runs inside the leader slot of
        # ``cache.get_or_compute(digest, ...)``, so a memoizing simulator
        # would re-enter ``get_or_compute`` on the same key and wait on its
        # own in-flight event.  The leader writes the result through the
        # cache (and store) under ``digest`` when this returns.
        one_off = Simulator(
            self.arch,
            hierarchy,
            self.simulator.trace_options,
            config=self.config.with_overrides(memoize=False),
        )
        return _attempt_program(
            one_off, program, self.config.timeout_s, self.config.resolved_retry()
        )

    def handle_result(self, digest: str) -> Tuple[int, dict]:
        """``GET /results/{digest}``: stored statistics, journal state or 404."""
        with self._lock:
            self.requests += 1
        stats = self.cache.get(digest)
        if stats is not None:
            return 200, self._result_body(digest, stats.as_dict(), True, "")
        journaled = self.store.journal_status(digest)
        if journaled is not None:
            state, error, attempts = journaled
            if state in ("queued", "leased"):
                return 202, {"status": "queued", "digest": digest}
            if state == "failed":
                return 500, {
                    "status": "failed",
                    "digest": digest,
                    "program_name": "",
                    "kind": SimulationFailure.ERROR,
                    "error": error or "journaled job failed",
                    "attempts": attempts,
                }
            # state == "done" but the result row was evicted: fall through to
            # 404 — the digest is recomputable by re-posting the program.
        return 404, {"error": f"no result stored for digest {digest}"}

    def health(self) -> Tuple[int, dict]:
        """``GET /healthz``: 200 ok, or 503 degraded with reasons."""
        reasons = []
        if not self.worker.healthy():
            reasons.append("worker dead")
        breaker_state = self.breaker.state
        if breaker_state != CircuitBreaker.CLOSED:
            reasons.append(f"breaker {breaker_state}")
        last_io = getattr(self.store, "last_io_error_at", 0.0)
        if last_io and time.time() - last_io < self.io_error_window_s:
            reasons.append("store io errors")
        if reasons:
            return 503, {
                "status": "degraded",
                "reasons": reasons,
                "retry_after": max(self.breaker.retry_after_s(), 1.0),
            }
        return 200, {"status": "ok"}

    def handle_stats(self) -> Tuple[int, dict]:
        """``GET /stats``: every layer's counters plus the service hit rate."""
        served = self.served_cached + self.computed
        return 200, {
            "arch": self.arch,
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "served_cached": self.served_cached,
            "computed": self.computed,
            "queued": self.queued,
            "failed": self.failed,
            "shed_queue_full": self.shed_queue_full,
            "shed_breaker": self.shed_breaker,
            "rate_limited": self.rate_limited,
            "hit_rate": (self.served_cached / served) if served else 0.0,
            "store": self.store.counters(),
            "journal": self.store.journal_counters(),
            "breaker": self.breaker.counters(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "coalesced": self.cache.coalesced,
            },
            "worker": self.worker.counters(),
            "tenants": {
                tenant.name: {"requests": tenant.requests, "quota": tenant.quota}
                for tenant in self.tenants.values()
            },
        }

    def close(self, drain: bool = False) -> None:
        """Stop the worker; ``drain=True`` finishes the in-flight wave and
        journals everything still queued in memory before returning."""
        self.worker.stop(drain=drain)


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


class _HttpError(Exception):
    """A protocol-level request defect with a definite status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class ServiceServer:
    """asyncio HTTP server wiring one :class:`SimulationService` to a socket."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- HTTP plumbing ------------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length header") from None
        if length > MAX_BODY_BYTES:
            raise _HttpError(
                413, f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        try:
            body = await reader.readexactly(length) if length else b""
        except asyncio.IncompleteReadError as error:
            raise _HttpError(
                400,
                f"request body truncated: got {len(error.partial)} of {length} bytes",
            ) from None
        return _Request(method=method, path=path, headers=headers, body=body)

    @staticmethod
    def _encode_response(status: int, payload: dict) -> bytes:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
                   413: "Payload Too Large", 429: "Too Many Requests",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        body = json.dumps(payload).encode("utf-8")
        extra = ""
        retry_after = payload.get("retry_after") if isinstance(payload, dict) else None
        if status in (429, 503) and retry_after is not None:
            extra = f"Retry-After: {max(int(math.ceil(float(retry_after))), 1)}\r\n"
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body

    def _route(self, request: _Request) -> Tuple[int, dict]:
        """Dispatch one request; runs on the executor thread pool."""
        if request.path == "/healthz":
            return self.service.health()
        tenant, error = self.service.authenticate(request.headers.get("x-api-key"))
        if error is not None:
            return error
        if request.method == "POST" and request.path == "/simulate":
            try:
                payload = json.loads(request.body.decode("utf-8") or "{}")
            except ValueError:
                return 400, {"error": "request body is not valid JSON"}
            return self.service.handle_simulate(payload, tenant=tenant)
        if request.method == "GET" and request.path.startswith("/results/"):
            return self.service.handle_result(request.path[len("/results/"):])
        if request.method == "GET" and request.path == "/stats":
            return self.service.handle_stats()
        return 404, {"error": f"no route for {request.method} {request.path}"}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if faults.should_inject("service_conn_drop"):
            # A mid-request network fault: the peer sees the connection
            # reset without a response — exactly what a crash looks like.
            writer.close()
            return
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            # Handlers block on simulation; keep the loop responsive by
            # running them on the default thread-pool executor.
            status, payload = await asyncio.get_running_loop().run_in_executor(
                None, self._route, request
            )
        except _HttpError as error:
            status, payload = error.status, {"error": error.message}
        except Exception as error:  # noqa: BLE001 — one bad connection only
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        try:
            writer.write(self._encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -- lifecycle ----------------------------------------------------------
    async def _serve(self) -> None:
        # Record the running loop here — not only in ``start_in_thread`` —
        # so ``shutdown()``/``stop()`` also work on the ``serve_forever()``
        # CLI path (where the loop is created by ``asyncio.run``).
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            await self._server.serve_forever()

    def serve_forever(self) -> None:
        """Run the server on the calling thread (the CLI entry point)."""
        try:
            asyncio.run(self._serve())
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass

    def start_in_thread(self, timeout: float = 10.0) -> "ServiceServer":
        """Run the server on a daemon thread; returns once the port is bound."""

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self._serve())
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service server did not come up in time")
        return self

    def shutdown(self) -> None:
        """Ask the event loop to stop accepting and cancel in-flight tasks.

        Thread-safe and signal-safe: does not block, so it can run inside a
        SIGTERM handler while ``serve_forever`` owns the calling thread.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return

        def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
            for task in asyncio.all_tasks(loop):
                task.cancel()

        try:
            loop.call_soon_threadsafe(_shutdown)
        except RuntimeError:
            pass  # loop already torn down

    def stop(self, timeout: float = 5.0, drain: bool = False) -> None:
        """Stop the server (either entry path) and the worker behind it.

        ``drain=True`` lets the worker finish its in-flight wave and journal
        the rest; ``drain=False`` models a crash — jobs stay journaled and a
        restarted service settles them.
        """
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout)
        self.service.close(drain=drain)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

"""Async HTTP front door for simulation-as-a-service.

A deliberately small HTTP/1.1 layer over stdlib :mod:`asyncio` (no new
dependencies): the event loop owns connection handling, every request
handler runs on a thread pool because the interesting ones block on
simulation.  Endpoints:

* ``POST /simulate`` — body ``{"program": <base64 pickle>, "hierarchy":
  {...}?, "wait": true?}``.  Served from the result store when the digest is
  known; otherwise the miss is queued to the worker pool (``wait=true``
  blocks for the outcome, ``wait=false`` returns ``202 queued``).
  Concurrent requests for one digest coalesce onto a single computation
  through :meth:`~repro.sim.memo.SimulationCache.get_or_compute` — the
  leader simulates, twins wait, everyone gets the same bits.
* ``GET /results/{digest}`` — fetch a stored result by digest (404 on miss).
* ``GET /stats`` — service, store, cache, worker and per-tenant counters.
* ``GET /healthz`` — unauthenticated liveness probe.

Multi-tenancy: requests carry an ``X-Api-Key`` header resolved against the
configured :class:`Tenant` table (401 on unknown keys, 429 once a tenant's
request quota is spent).  An empty tenant table disables authentication —
the single-user dev mode.  Programs travel as pickled payloads, which is an
arbitrary-code-execution surface by design of :mod:`pickle`: the service is
built for *trusted* tenants behind API keys, not the open internet.
"""

from __future__ import annotations

import asyncio
import base64
import json
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.cpu import TraceOptions
from repro.sim.hierarchy import CacheHierarchyConfig, CacheLevelConfig
from repro.sim.memo import SimulationCache
from repro.sim.runtime_config import RuntimeConfig
from repro.sim.simulator import BatchSimulator, SimulationFailure
from repro.service.store import ResultStore
from repro.service.worker import SimulationWorker

#: Upper bound on accepted request bodies (pickled programs are small; a
#: multi-megabyte body is a client bug or abuse, not a schedule).
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass
class Tenant:
    """One API tenant: key, display name and request quota (0 = unlimited)."""

    name: str
    api_key: str
    quota: int = 0
    requests: int = 0


def hierarchy_from_dict(payload: dict) -> CacheHierarchyConfig:
    """Rebuild a :class:`CacheHierarchyConfig` from its ``asdict`` JSON form."""

    def level(entry) -> Optional[CacheLevelConfig]:
        if entry is None:
            return None
        return CacheLevelConfig(
            size_bytes=int(entry["size_bytes"]),
            sets=int(entry["sets"]),
            associativity=int(entry["associativity"]),
            replacement=str(entry.get("replacement", "lru")),
        )

    return CacheHierarchyConfig(
        name=str(payload["name"]),
        l1d=level(payload["l1d"]),
        l1i=level(payload["l1i"]),
        l2=level(payload["l2"]),
        l3=level(payload.get("l3")),
        line_bytes=int(payload.get("line_bytes", 64)),
    )


class _JobFailed(Exception):
    """Internal: carries a SimulationFailure out of a coalesced computation."""

    def __init__(self, failure: SimulationFailure):
        super().__init__(failure.error)
        self.failure = failure


class SimulationService:
    """The service's request logic, independent of the HTTP transport."""

    def __init__(
        self,
        arch: str,
        store: ResultStore,
        config: Optional[RuntimeConfig] = None,
        tenants: Optional[Dict[str, Tenant]] = None,
        hierarchy_config: Optional[CacheHierarchyConfig] = None,
        trace_options: Optional[TraceOptions] = None,
        wait_timeout_s: float = 300.0,
    ):
        self.arch = arch
        self.store = store
        self.config = config if config is not None else RuntimeConfig()
        #: Tenants keyed by API key; empty disables authentication (dev mode).
        self.tenants = dict(tenants or {})
        self.wait_timeout_s = float(wait_timeout_s)
        self.cache = SimulationCache(store=store)
        self.simulator = BatchSimulator(
            arch,
            hierarchy_config,
            trace_options if trace_options is not None else TraceOptions(),
            memo_cache=self.cache,
            config=self.config,
        )
        self.worker = SimulationWorker(
            self.simulator,
            timeout_s=self.config.timeout_s,
            retry=self.config.resolved_retry(),
        )
        self.started_at = time.time()
        self.requests = 0
        self.served_cached = 0
        self.computed = 0
        self.queued = 0
        self.failed = 0
        self._lock = threading.Lock()

    # -- auth ---------------------------------------------------------------
    def authenticate(
        self, api_key: Optional[str]
    ) -> Tuple[Optional[Tenant], Optional[Tuple[int, dict]]]:
        """Resolve a tenant; returns ``(tenant, None)`` or ``(None, error)``."""
        if not self.tenants:
            return None, None  # dev mode: no auth configured
        tenant = self.tenants.get(api_key or "")
        if tenant is None:
            return None, (401, {"error": "unknown or missing API key"})
        with self._lock:
            if tenant.quota > 0 and tenant.requests >= tenant.quota:
                return None, (
                    429,
                    {"error": f"tenant {tenant.name!r} exceeded quota {tenant.quota}"},
                )
            tenant.requests += 1
        return tenant, None

    # -- request handlers ---------------------------------------------------
    def _digest_for(self, program, hierarchy_config) -> str:
        return SimulationCache.make_key(
            program, hierarchy_config, self.simulator.trace_options, self.simulator.engine
        )

    def _result_body(self, digest: str, flat: Dict[str, float], cached: bool,
                     program_name: str) -> dict:
        return {
            "status": "done",
            "digest": digest,
            "cached": cached,
            "program_name": program_name,
            "arch": self.arch,
            "trace_accesses": int(flat.get("sim.trace_accesses", 0.0)),
            "stats": flat,
        }

    @staticmethod
    def _failure_body(digest: str, failure: SimulationFailure) -> dict:
        return {
            "status": "failed",
            "digest": digest,
            "program_name": failure.program_name,
            "kind": failure.kind,
            "error": failure.error,
            "attempts": failure.attempts,
        }

    def handle_simulate(self, payload: dict) -> Tuple[int, dict]:
        """``POST /simulate``: memoized result, queued miss, or failure record."""
        with self._lock:
            self.requests += 1
        try:
            program = pickle.loads(base64.b64decode(payload["program"]))
        except KeyError:
            return 400, {"error": "missing required field 'program'"}
        except Exception as error:  # noqa: BLE001 — client payload boundary
            return 400, {"error": f"undecodable program payload: {error}"}
        hierarchy = self.simulator.hierarchy_config
        if payload.get("hierarchy") is not None:
            try:
                hierarchy = hierarchy_from_dict(payload["hierarchy"])
            except (KeyError, TypeError, ValueError) as error:
                return 400, {"error": f"malformed hierarchy config: {error}"}
        digest = self._digest_for(program, hierarchy)
        cached = self.cache.get(digest)
        if cached is not None:
            with self._lock:
                self.served_cached += 1
            return 200, self._result_body(digest, cached.as_dict(), True, program.name)
        if not payload.get("wait", True):
            with self._lock:
                self.queued += 1
            self.worker.submit(digest, program)
            return 202, {"status": "queued", "digest": digest}

        def compute():
            # Runs on the leader only: concurrent POSTs for one digest
            # coalesce here via get_or_compute; twins block until the leader
            # settles and are served the freshly cached statistics.
            outcome = self._compute_miss(digest, program, hierarchy)
            if isinstance(outcome, SimulationFailure):
                raise _JobFailed(outcome)
            return outcome.stats

        try:
            stats, computed = self.cache.get_or_compute(digest, compute)
        except _JobFailed as error:
            with self._lock:
                self.failed += 1
            return 500, self._failure_body(digest, error.failure)
        with self._lock:
            if computed:
                self.computed += 1
            else:
                self.served_cached += 1
        return 200, self._result_body(digest, stats.as_dict(), not computed, program.name)

    def _compute_miss(self, digest: str, program, hierarchy):
        """Simulate one miss: worker wave for the service hierarchy, inline
        one-off simulation for a request-supplied hierarchy."""
        if hierarchy is self.simulator.hierarchy_config:
            return self.worker.run_sync(digest, program, self.wait_timeout_s)
        from repro.sim.simulator import Simulator, _attempt_program

        # Unmemoized on purpose: this runs inside the leader slot of
        # ``cache.get_or_compute(digest, ...)``, so a memoizing simulator
        # would re-enter ``get_or_compute`` on the same key and wait on its
        # own in-flight event.  The leader writes the result through the
        # cache (and store) under ``digest`` when this returns.
        one_off = Simulator(
            self.arch,
            hierarchy,
            self.simulator.trace_options,
            config=self.config.with_overrides(memoize=False),
        )
        return _attempt_program(
            one_off, program, self.config.timeout_s, self.config.resolved_retry()
        )

    def handle_result(self, digest: str) -> Tuple[int, dict]:
        """``GET /results/{digest}``: stored statistics or 404."""
        with self._lock:
            self.requests += 1
        stats = self.cache.get(digest)
        if stats is None:
            return 404, {"error": f"no result stored for digest {digest}"}
        return 200, self._result_body(digest, stats.as_dict(), True, "")

    def handle_stats(self) -> Tuple[int, dict]:
        """``GET /stats``: every layer's counters plus the service hit rate."""
        served = self.served_cached + self.computed
        return 200, {
            "arch": self.arch,
            "uptime_s": time.time() - self.started_at,
            "requests": self.requests,
            "served_cached": self.served_cached,
            "computed": self.computed,
            "queued": self.queued,
            "failed": self.failed,
            "hit_rate": (self.served_cached / served) if served else 0.0,
            "store": self.store.counters(),
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "coalesced": self.cache.coalesced,
            },
            "worker": self.worker.counters(),
            "tenants": {
                tenant.name: {"requests": tenant.requests, "quota": tenant.quota}
                for tenant in self.tenants.values()
            },
        }

    def close(self) -> None:
        self.worker.stop()


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes


class ServiceServer:
    """asyncio HTTP server wiring one :class:`SimulationService` to a socket."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- HTTP plumbing ------------------------------------------------------
    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body of {length} bytes exceeds {MAX_BODY_BYTES}")
        body = await reader.readexactly(length) if length else b""
        return _Request(method=method, path=path, headers=headers, body=body)

    @staticmethod
    def _encode_response(status: int, payload: dict) -> bytes:
        reasons = {200: "OK", 202: "Accepted", 400: "Bad Request",
                   401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
                   429: "Too Many Requests", 500: "Internal Server Error"}
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("latin-1") + body

    def _route(self, request: _Request) -> Tuple[int, dict]:
        """Dispatch one request; runs on the executor thread pool."""
        if request.path == "/healthz":
            return 200, {"status": "ok"}
        _tenant, error = self.service.authenticate(request.headers.get("x-api-key"))
        if error is not None:
            return error
        if request.method == "POST" and request.path == "/simulate":
            try:
                payload = json.loads(request.body.decode("utf-8") or "{}")
            except ValueError:
                return 400, {"error": "request body is not valid JSON"}
            return self.service.handle_simulate(payload)
        if request.method == "GET" and request.path.startswith("/results/"):
            return self.service.handle_result(request.path[len("/results/"):])
        if request.method == "GET" and request.path == "/stats":
            return self.service.handle_stats()
        return 404, {"error": f"no route for {request.method} {request.path}"}

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            # Handlers block on simulation; keep the loop responsive by
            # running them on the default thread-pool executor.
            status, payload = await asyncio.get_running_loop().run_in_executor(
                None, self._route, request
            )
        except Exception as error:  # noqa: BLE001 — one bad connection only
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        try:
            writer.write(self._encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -- lifecycle ----------------------------------------------------------
    async def _serve(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            await self._server.serve_forever()

    def serve_forever(self) -> None:
        """Run the server on the calling thread (the CLI entry point)."""
        try:
            asyncio.run(self._serve())
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass

    def start_in_thread(self, timeout: float = 10.0) -> "ServiceServer":
        """Run the server on a daemon thread; returns once the port is bound."""

        def run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve())
            except asyncio.CancelledError:
                pass
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service server did not come up in time")
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the server thread and the worker behind it."""
        if self._loop is not None and self._server is not None:
            def shutdown() -> None:
                assert self._server is not None
                self._server.close()
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            self._loop.call_soon_threadsafe(shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
        self.service.close()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

"""Service worker: supervised drain of queued simulation misses.

Requests that miss the :class:`~repro.service.store.ResultStore` travel two
ways: ``wait=true`` misses become in-memory :class:`SimulationJob` handles
their HTTP thread blocks on, while ``wait=false`` misses are written ahead
to the store's **durable job journal** and claimed here lease-by-lease.  A
background worker thread gathers both into waves and runs them through
:class:`~repro.sim.simulator.BatchSimulator.iter_batch` — the shared-arena
fast path with the full reliability semantics (cooperative per-candidate
deadlines, retry accounting, per-candidate crash containment).  A crashed
or erroring candidate settles as a structured
:class:`~repro.sim.simulator.SimulationFailure` for its own requester only;
its wave-mates and the worker itself keep going, mirroring
``SimulatorPool.run_many_resilient`` containment.

Above the worker thread sits a **supervisor**: a heartbeat loop that
restarts the worker if its thread dies (the ``worker_thread_crash``
injection site simulates exactly that), rescues the dead worker's
in-flight wave (in-memory jobs re-queue, journal leases release), reclaims
expired journal leases left by crashed *processes*, and feeds whole-wave
faults into an optional :class:`~repro.reliability.CircuitBreaker` — while
the breaker is open the worker pauses journal claims and lets exactly one
probe wave through on the breaker's schedule.

The worker writes every computed result through the batch simulator's memo
cache (memory LRU → store), so the HTTP layer's coalesced waiters find it
there the moment the job settles; journal jobs additionally settle their
journal row (``done``/``failed``) for ``GET /results`` pollers.

``stop(drain=True)`` finishes the in-flight wave and journals the
remaining in-memory queue instead of abandoning it, so a graceful shutdown
loses nothing: the next service over the same database settles the rest.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.codegen.program import Program
from repro.reliability import CircuitBreaker, RetryPolicy, faults
from repro.sim.simulator import (
    BATCH_WAVE_CANDIDATES,
    BatchSimulator,
    ResilientOutcome,
    SimulationFailure,
)


@dataclass
class SimulationJob:
    """One queued simulation request travelling through the worker."""

    digest: str
    program: Program
    tenant: str = ""
    #: Claimed from the durable journal (no waiter; settles its journal row).
    from_journal: bool = False
    attempts: int = 0
    done: threading.Event = field(default_factory=threading.Event)
    #: Set when the waiter gave up; the worker skips the job in-memory and
    #: hands it to the journal so pollers still get an outcome.
    abandoned: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[ResilientOutcome] = None

    def wait(self, timeout: Optional[float] = None) -> ResilientOutcome:
        """Block until the job settles; a worker hang becomes a TIMEOUT record.

        A timed-out wait also marks the job **abandoned**: nobody is left to
        consume the in-memory outcome, so the worker drops it from future
        waves (no wave slot burned, no counters flipped later) and journals
        it instead — the result still lands in the store for pollers.
        """
        if not self.done.wait(timeout):
            self.abandoned.set()
            return SimulationFailure(
                program_name=self.program.name,
                kind=SimulationFailure.TIMEOUT,
                error=f"service worker did not settle job within {timeout}s",
            )
        assert self.outcome is not None
        return self.outcome


class SimulationWorker:
    """Supervised background thread draining jobs through one batch simulator."""

    def __init__(
        self,
        simulator: BatchSimulator,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        max_wave: int = BATCH_WAVE_CANDIDATES,
        poll_s: float = 0.05,
        journal=None,
        lease_s: float = 30.0,
        max_job_attempts: int = 3,
        breaker: Optional[CircuitBreaker] = None,
        supervise: bool = True,
        heartbeat_s: float = 0.5,
    ):
        self.simulator = simulator
        self.timeout_s = float(timeout_s)
        self.retry = retry
        self.max_wave = int(max_wave)
        self.poll_s = float(poll_s)
        #: Durable journal (a :class:`~repro.service.store.ResultStore`, or
        #: anything with its ``journal_*`` surface); ``None`` disables
        #: durability — the in-memory legacy mode.
        self.journal = journal
        self.lease_s = float(lease_s)
        self.max_job_attempts = int(max_job_attempts)
        self.breaker = breaker
        self.heartbeat_s = float(heartbeat_s)
        self._queue: "queue.Queue[SimulationJob]" = queue.Queue()
        self._stop = threading.Event()
        self._drain = False
        self.waves = 0
        self.jobs = 0
        self.failures = 0
        self.restarts = 0
        self.skipped_abandoned = 0
        self.corrupt_jobs = 0
        self.journaled_on_drain = 0
        self.last_beat = time.monotonic()
        #: The wave currently being processed; the supervisor rescues it if
        #: the worker thread dies mid-wave.
        self._wave_lock = threading.Lock()
        self._current_wave: List[SimulationJob] = []
        if self.journal is not None:
            # Startup recovery: re-queue every expired lease a dead worker
            # (possibly in a previous process) left behind.
            self.journal.journal_recover()
        self._thread = self._spawn_worker()
        self._supervisor: Optional[threading.Thread] = None
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-sim-supervisor", daemon=True
            )
            self._supervisor.start()

    def _spawn_worker(self) -> threading.Thread:
        thread = threading.Thread(target=self._run, name="repro-sim-worker", daemon=True)
        thread.start()
        return thread

    # -- submission ---------------------------------------------------------
    def submit(self, digest: str, program: Program, tenant: str = "") -> SimulationJob:
        """Queue one in-memory simulation; returns the job handle to wait on."""
        job = SimulationJob(digest=digest, program=program, tenant=tenant)
        self._queue.put(job)
        return job

    def run_sync(
        self,
        digest: str,
        program: Program,
        wait_timeout: Optional[float] = None,
        tenant: str = "",
    ) -> ResilientOutcome:
        """Queue and block until the outcome settles (HTTP ``wait=true`` path)."""
        return self.submit(digest, program, tenant).wait(wait_timeout)

    def backlog(self) -> int:
        """Unsettled depth: in-memory queue plus pending journal rows."""
        depth = self._queue.qsize()
        if self.journal is not None:
            depth += self.journal.journal_pending()
        return depth

    # -- wave assembly ------------------------------------------------------
    def _gather_wave(self) -> List[SimulationJob]:
        """Block briefly for in-memory jobs, then top up from the journal."""
        wave: List[SimulationJob] = []
        try:
            wave.append(self._queue.get(timeout=self.poll_s))
            while len(wave) < self.max_wave:
                wave.append(self._queue.get_nowait())
        except queue.Empty:
            pass
        kept: List[SimulationJob] = []
        for job in wave:
            if job.abandoned.is_set():
                # The waiter is gone; hand the job to the journal so the
                # result still gets computed and stored for pollers.
                self.skipped_abandoned += 1
                if self.journal is not None:
                    self.journal.journal_enqueue(
                        job.digest, pickle.dumps(job.program), job.tenant
                    )
            else:
                kept.append(job)
        wave = kept
        if self.journal is None or len(wave) >= self.max_wave:
            return wave
        claim_limit = self.max_wave - len(wave)
        if self.breaker is not None and not wave:
            # Breaker gating applies to the background journal drain, not to
            # in-memory jobs (their HTTP admission was already gated).
            if self.breaker.state == CircuitBreaker.HALF_OPEN:
                # A probe is in flight.  The worker is single-threaded, so a
                # half-open state *here* means the probe slot was consumed on
                # the HTTP side and its job journaled — claim exactly one so
                # the probe can actually run and settle the breaker.
                claim_limit = 1
            elif not self.breaker.allow():
                return wave  # open before the probe deadline: claim nothing
            elif self.breaker.state == CircuitBreaker.HALF_OPEN:
                claim_limit = 1  # this allow() admitted the probe: one job
        for claimed in self.journal.journal_claim(claim_limit, self.lease_s):
            job = self._job_from_journal(claimed)
            if job is not None:
                wave.append(job)
        return wave

    def _job_from_journal(self, claimed) -> Optional[SimulationJob]:
        """Rebuild a claimed journal row; settles bad rows as failed."""
        if claimed.attempts > self.max_job_attempts:
            self.journal.journal_settle(
                claimed.digest,
                "failed",
                f"gave up after {claimed.attempts - 1} attempts "
                f"(max {self.max_job_attempts})",
            )
            self.failures += 1
            return None
        try:
            program = pickle.loads(claimed.program_blob)
        except Exception as error:  # noqa: BLE001 — corrupt blob boundary
            self.corrupt_jobs += 1
            self.failures += 1
            self.journal.journal_settle(
                claimed.digest,
                "failed",
                f"undecodable journaled program: {type(error).__name__}: {error}",
            )
            return None
        return SimulationJob(
            digest=claimed.digest,
            program=program,
            tenant=claimed.tenant,
            from_journal=True,
            attempts=claimed.attempts,
        )

    # -- execution ----------------------------------------------------------
    def _settle(self, job: SimulationJob, outcome: ResilientOutcome) -> None:
        if isinstance(outcome, SimulationFailure):
            self.failures += 1
            if job.from_journal:
                self.journal.journal_settle(job.digest, "failed", outcome.error)
        elif job.from_journal:
            self.journal.journal_settle(job.digest, "done")
        job.outcome = outcome
        job.done.set()

    def _process_wave(self, wave: List[SimulationJob]) -> None:
        with self._wave_lock:
            self._current_wave = list(wave)
        self.waves += 1
        self.jobs += len(wave)
        # worker_thread_crash site: the exception escapes the wave handling
        # entirely and kills the drain thread mid-wave; the supervisor must
        # notice the dead thread, restart it and rescue this wave.
        faults.maybe_raise("worker_thread_crash")
        try:
            outcomes = self.simulator.iter_batch(
                [job.program for job in wave],
                timeout_s=self.timeout_s if self.timeout_s > 0 else None,
                retry=self.retry,
            )
            for job, outcome in zip(wave, outcomes):
                self._settle(job, outcome)
            if self.breaker is not None:
                # Per-candidate failures are contained data, not a backend
                # fault; a wave that ran to completion is a healthy wave.
                self.breaker.record_success()
        except Exception as error:  # noqa: BLE001 — worker must survive
            # iter_batch contains per-candidate failures itself; this
            # backstop converts an unexpected whole-wave fault into one
            # failure record per still-unsettled job.
            if self.breaker is not None:
                self.breaker.record_failure()
            for job in wave:
                if not job.done.is_set():
                    self._settle(
                        job,
                        SimulationFailure(
                            program_name=job.program.name,
                            kind=SimulationFailure.CRASH,
                            error=f"{type(error).__name__}: {error}",
                        ),
                    )
        finally:
            with self._wave_lock:
                self._current_wave = []

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                self.last_beat = time.monotonic()
                wave = self._gather_wave()
                if wave:
                    self._process_wave(wave)
        except faults.InjectedFault:
            # An injected thread death: return instead of unwinding through
            # the interpreter's noisy unhandled-thread-exception hook.  The
            # observable state is identical — the thread is dead, the wave
            # is orphaned, and the supervisor has to recover both.
            return

    # -- supervision --------------------------------------------------------
    def _supervise(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            if not self._thread.is_alive():
                self._recover_dead_worker()
            if self.journal is not None:
                # Reclaim leases expired by crashed processes (ours cannot
                # expire silently: a dead thread is handled right above).
                self.journal.journal_recover()

    def _recover_dead_worker(self) -> None:
        """Restart a dead worker thread and rescue its in-flight wave."""
        with self._wave_lock:
            wave, self._current_wave = self._current_wave, []
        requeue: List[str] = []
        for job in wave:
            if job.done.is_set() or job.abandoned.is_set():
                continue
            if job.from_journal:
                requeue.append(job.digest)
            else:
                self._queue.put(job)
        if requeue and self.journal is not None:
            self.journal.journal_requeue(requeue)
        if self.breaker is not None:
            # A dying worker thread is a whole-wave fault by definition.
            self.breaker.record_failure()
        self.restarts += 1
        self._thread = self._spawn_worker()

    def healthy(self) -> bool:
        """Liveness: the drain thread is running (or being restarted)."""
        return self._thread.is_alive()

    # -- introspection / lifecycle ------------------------------------------
    def counters(self) -> dict:
        """Worker metrics for ``GET /stats``."""
        return {
            "waves": self.waves,
            "jobs": self.jobs,
            "failures": self.failures,
            "queued": self._queue.qsize(),
            "restarts": self.restarts,
            "skipped_abandoned": self.skipped_abandoned,
            "corrupt_jobs": self.corrupt_jobs,
            "journaled_on_drain": self.journaled_on_drain,
            "beat_age_s": time.monotonic() - self.last_beat,
            "alive": self._thread.is_alive(),
        }

    def _drain_queue_to_journal(self) -> None:
        """Journal every undrained in-memory job instead of abandoning it."""
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                return
            if job.done.is_set() or self.journal is None:
                continue
            self.journal.journal_enqueue(
                job.digest, pickle.dumps(job.program), job.tenant
            )
            self.journaled_on_drain += 1

    def stop(self, timeout: float = 5.0, drain: bool = False) -> None:
        """Stop the drain loop.

        With ``drain=True`` the in-flight wave finishes (up to ``timeout``)
        and the remaining queue is journaled for the next service over the
        same database; without it, queued-but-unstarted in-memory jobs are
        abandoned (journal rows stay claimable either way — their leases
        expire).
        """
        self._drain = drain
        self._stop.set()
        self._thread.join(timeout)
        if self._supervisor is not None:
            self._supervisor.join(self.heartbeat_s + 1.0)
        if drain:
            self._drain_queue_to_journal()

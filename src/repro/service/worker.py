"""Service worker: drains queued simulation misses in BatchSimulator waves.

Requests that miss the :class:`~repro.service.store.ResultStore` are queued
as jobs; a background worker thread gathers queued jobs into waves and runs
them through :class:`~repro.sim.simulator.BatchSimulator.iter_batch` — the
shared-arena fast path with the full reliability semantics (cooperative
per-candidate deadlines, retry accounting, per-candidate crash containment).
A crashed or erroring candidate settles as a structured
:class:`~repro.sim.simulator.SimulationFailure` for its own requester only;
its wave-mates and the worker itself keep going, mirroring
``SimulatorPool.run_many_resilient`` containment.

The worker writes every computed result through the batch simulator's memo
cache (memory LRU → store), so the HTTP layer's coalesced waiters find it
there the moment the job settles.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import List, Optional

from repro.codegen.program import Program
from repro.reliability import RetryPolicy
from repro.sim.simulator import (
    BATCH_WAVE_CANDIDATES,
    BatchSimulator,
    ResilientOutcome,
    SimulationFailure,
)


@dataclass
class SimulationJob:
    """One queued simulation request travelling through the worker."""

    digest: str
    program: Program
    done: threading.Event = field(default_factory=threading.Event)
    outcome: Optional[ResilientOutcome] = None

    def wait(self, timeout: Optional[float] = None) -> ResilientOutcome:
        """Block until the job settles; a worker hang becomes a TIMEOUT record."""
        if not self.done.wait(timeout):
            return SimulationFailure(
                program_name=self.program.name,
                kind=SimulationFailure.TIMEOUT,
                error=f"service worker did not settle job within {timeout}s",
            )
        assert self.outcome is not None
        return self.outcome


class SimulationWorker:
    """Background thread running queued jobs through one batch simulator."""

    def __init__(
        self,
        simulator: BatchSimulator,
        timeout_s: float = 0.0,
        retry: Optional[RetryPolicy] = None,
        max_wave: int = BATCH_WAVE_CANDIDATES,
        poll_s: float = 0.05,
    ):
        self.simulator = simulator
        self.timeout_s = float(timeout_s)
        self.retry = retry
        self.max_wave = int(max_wave)
        self.poll_s = float(poll_s)
        self._queue: "queue.Queue[SimulationJob]" = queue.Queue()
        self._stop = threading.Event()
        self.waves = 0
        self.jobs = 0
        self.failures = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-sim-worker", daemon=True
        )
        self._thread.start()

    def submit(self, digest: str, program: Program) -> SimulationJob:
        """Queue one simulation; returns the job handle to wait on."""
        job = SimulationJob(digest=digest, program=program)
        self._queue.put(job)
        return job

    def run_sync(
        self, digest: str, program: Program, wait_timeout: Optional[float] = None
    ) -> ResilientOutcome:
        """Queue and block until the outcome settles (HTTP ``wait=true`` path)."""
        return self.submit(digest, program).wait(wait_timeout)

    def _gather_wave(self) -> List[SimulationJob]:
        """Block for the first job, then drain whatever else is queued."""
        try:
            first = self._queue.get(timeout=self.poll_s)
        except queue.Empty:
            return []
        wave = [first]
        while len(wave) < self.max_wave:
            try:
                wave.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return wave

    def _run(self) -> None:
        while not self._stop.is_set():
            wave = self._gather_wave()
            if not wave:
                continue
            self.waves += 1
            self.jobs += len(wave)
            try:
                outcomes = self.simulator.iter_batch(
                    [job.program for job in wave],
                    timeout_s=self.timeout_s if self.timeout_s > 0 else None,
                    retry=self.retry,
                )
                for job, outcome in zip(wave, outcomes):
                    if isinstance(outcome, SimulationFailure):
                        self.failures += 1
                    job.outcome = outcome
                    job.done.set()
            except Exception as error:  # noqa: BLE001 — worker must survive
                # iter_batch contains per-candidate failures itself; this
                # backstop converts an unexpected whole-wave fault into one
                # failure record per still-unsettled job.
                for job in wave:
                    if not job.done.is_set():
                        self.failures += 1
                        job.outcome = SimulationFailure(
                            program_name=job.program.name,
                            kind=SimulationFailure.CRASH,
                            error=f"{type(error).__name__}: {error}",
                        )
                        job.done.set()

    def counters(self) -> dict:
        """Worker metrics for ``GET /stats``."""
        return {
            "waves": self.waves,
            "jobs": self.jobs,
            "failures": self.failures,
            "queued": self._queue.qsize(),
        }

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the drain loop; queued-but-unstarted jobs are abandoned."""
        self._stop.set()
        self._thread.join(timeout)

"""DB-backed shared result store: the memo layer's flat files grown a schema.

:class:`ResultStore` is the repo layer of the simulation service: one SQLite
database (stdlib :mod:`sqlite3`, WAL mode) holding simulation statistics
keyed on their ``sim_digest`` — the same content-addressed memoization key
the flat-file disk layer in :mod:`repro.sim.memo` uses, so the two backends
are interchangeable and mutually importable.  Rows are schema-versioned
twice over: by the store's own table layout
(:data:`SERVICE_SCHEMA_VERSION`) and by the memo semantic version
(:data:`~repro.sim.memo.CACHE_SCHEMA_VERSION`, which changes whenever
simulation *results* change).  A mismatch on either drops and recreates the
table — entries are content-addressed recomputables, never the only copy of
anything.

The store plugs straight into :class:`~repro.sim.memo.SimulationCache` as
its duck-typed ``store=`` backend (``get(key) -> flat dict | None`` /
``put(key, flat)``), putting it behind the cache's in-memory LRU and
in-flight coalescing, and is safe for many threads over one connection
(serialised by an internal lock; cross-process sharing goes through WAL).

The same database also carries the service's **durable job journal** — a
``jobs`` table holding every ``wait=false`` request as a write-ahead row
(digest PK, pickled program, tenant, state, lease expiry, attempt count)
so a queued job survives a service crash: on restart the worker reclaims
``queued`` rows and expired leases and settles every pre-crash job
bit-identically (at-least-once delivery, idempotent by digest — a digest
is a content hash, so running a job twice writes the same result row
once).  See the ``journal_*`` methods below.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.reliability import faults
from repro.sim.memo import CACHE_SCHEMA_VERSION, _decode_entry

#: Version of the store's own table layout.  Bump on *incompatible* layout
#: changes; the memo :data:`CACHE_SCHEMA_VERSION` is tracked separately in
#: ``meta`` and invalidates rows whenever simulation semantics change.
#: Purely additive tables (the job journal) do not bump it — dropping a
#: shared store full of results over a new empty table would be hostile.
SERVICE_SCHEMA_VERSION = 1

#: Legal job-journal states.  ``queued`` rows (and ``leased`` rows whose
#: lease expired) are claimable; ``done``/``failed`` are settled terminal
#: states that re-arm to ``queued`` if the digest is enqueued again.
JOURNAL_STATES = ("queued", "leased", "done", "failed")


@dataclass(frozen=True)
class JournalJob:
    """One claimed journal row travelling to the service worker."""

    digest: str
    program_blob: bytes
    tenant: str
    #: Execution attempts including this claim (incremented at claim time).
    attempts: int


def _canonical(flat: Dict[str, float]) -> str:
    return json.dumps(flat, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Shared simulation-result store over one SQLite database.

    ``max_entries`` bounds the table LRU-style on ``last_used`` (0 =
    unbounded); ``max_age_s`` additionally evicts rows not used within the
    window (0 = no age limit).  ``hits``/``misses``/``evictions`` count this
    store instance's traffic and are surfaced by ``GET /stats``.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        max_entries: int = 100_000,
        max_age_s: float = 0.0,
    ):
        self.path = str(path)
        self.max_entries = int(max_entries)
        self.max_age_s = float(max_age_s)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: I/O failures observed (or injected) on the result path; surfaced
        #: by ``GET /healthz`` as a degradation reason while recent.
        self.io_errors = 0
        self.last_io_error_at = 0.0
        # Journal traffic counters (lifetime of this store instance).
        self.journal_enqueued = 0
        self.journal_claimed = 0
        self.journal_drained = 0
        self.journal_failed = 0
        self.journal_recovered = 0
        with self._lock:
            self._ensure_schema()

    # -- schema -------------------------------------------------------------
    def _ensure_schema(self) -> None:
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        rows = dict(self._conn.execute("SELECT key, value FROM meta"))
        expected = {
            "service_schema": str(SERVICE_SCHEMA_VERSION),
            "memo_schema": str(CACHE_SCHEMA_VERSION),
        }
        if rows and rows != expected:
            # Stale layout or stale simulation semantics: every row is a
            # content-addressed recomputable, so drop instead of migrating.
            self._conn.execute("DROP TABLE IF EXISTS results")
            self._conn.execute("DELETE FROM meta")
            rows = {}
        if not rows:
            self._conn.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                sorted(expected.items()),
            )
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS results (
                digest     TEXT PRIMARY KEY,
                schema     INTEGER NOT NULL,
                stats      TEXT NOT NULL,
                sha256     TEXT NOT NULL,
                created_at REAL NOT NULL,
                last_used  REAL NOT NULL,
                use_count  INTEGER NOT NULL DEFAULT 0
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_last_used ON results (last_used)"
        )
        # Durable job journal: the write-ahead queue behind ``wait=false``.
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS jobs (
                digest      TEXT PRIMARY KEY,
                program     BLOB NOT NULL,
                tenant      TEXT NOT NULL DEFAULT '',
                state       TEXT NOT NULL DEFAULT 'queued',
                lease_until REAL NOT NULL DEFAULT 0,
                attempts    INTEGER NOT NULL DEFAULT 0,
                error       TEXT,
                created_at  REAL NOT NULL,
                updated_at  REAL NOT NULL
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, created_at)"
        )
        self._conn.commit()

    # -- fault containment --------------------------------------------------
    def _note_io_error(self) -> None:
        self.io_errors += 1
        self.last_io_error_at = time.time()

    def _maybe_io_fault(self) -> None:
        """``store_io_error`` injection site: a failing result-store query."""
        if faults.should_inject("store_io_error"):
            self._note_io_error()
            raise sqlite3.OperationalError(
                "injected store I/O error (site store_io_error)"
            )

    # -- CRUD ---------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, float]]:
        """Fetch one flat statistics snapshot; ``None`` on miss or corruption.

        I/O errors (real or injected) propagate to the caller — the memo
        layer contains them as misses — but are counted here so the health
        endpoint can report a struggling store.
        """
        self._maybe_io_fault()
        try:
            return self._get_locked(digest)
        except sqlite3.Error:
            self._note_io_error()
            raise

    def _get_locked(self, digest: str) -> Optional[Dict[str, float]]:
        now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT stats, sha256, schema FROM results WHERE digest = ?", (digest,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            stats_json, checksum, schema = row
            if schema != CACHE_SCHEMA_VERSION or (
                hashlib.sha256(stats_json.encode("utf-8")).hexdigest() != checksum
            ):
                # Defensive: a corrupted or stale row is dropped and re-simulated.
                self._conn.execute("DELETE FROM results WHERE digest = ?", (digest,))
                self._conn.commit()
                self.misses += 1
                return None
            self._conn.execute(
                "UPDATE results SET last_used = ?, use_count = use_count + 1 "
                "WHERE digest = ?",
                (now, digest),
            )
            self._conn.commit()
            self.hits += 1
        try:
            flat = json.loads(stats_json)
            return {str(k): float(v) for k, v in flat.items()}
        except (ValueError, TypeError, AttributeError):
            return None

    def put(self, digest: str, flat: Dict[str, float]) -> None:
        """Insert or refresh one result (idempotent — keys are content hashes)."""
        self._maybe_io_fault()
        try:
            self._put_locked(digest, flat)
        except sqlite3.Error:
            self._note_io_error()
            raise

    def _put_locked(self, digest: str, flat: Dict[str, float]) -> None:
        normalised = {str(k): float(v) for k, v in flat.items()}
        stats_json = _canonical(normalised)
        checksum = hashlib.sha256(stats_json.encode("utf-8")).hexdigest()
        now = time.time()
        with self._lock:
            self._conn.execute(
                """
                INSERT INTO results
                    (digest, schema, stats, sha256, created_at, last_used, use_count)
                VALUES (?, ?, ?, ?, ?, ?, 0)
                ON CONFLICT(digest) DO UPDATE SET last_used = excluded.last_used
                """,
                (digest, CACHE_SCHEMA_VERSION, stats_json, checksum, now, now),
            )
            self._evict_locked(now)
            self._conn.commit()

    def _evict_locked(self, now: float) -> None:
        """Age- then LRU-evict; caller holds the lock and commits."""
        if self.max_age_s > 0:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE last_used < ?", (now - self.max_age_s,)
            )
            self.evictions += cursor.rowcount
        if self.max_entries > 0:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            overflow = count - self.max_entries
            if overflow > 0:
                cursor = self._conn.execute(
                    """
                    DELETE FROM results WHERE digest IN (
                        SELECT digest FROM results
                        ORDER BY last_used ASC, digest ASC LIMIT ?
                    )
                    """,
                    (overflow,),
                )
                self.evictions += cursor.rowcount

    def evict(self) -> int:
        """Apply the age/LRU policy now; returns total evictions so far."""
        with self._lock:
            self._evict_locked(time.time())
            self._conn.commit()
            return self.evictions

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            return int(count)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE digest = ?", (digest,)
            ).fetchone()
            return row is not None

    # -- job journal --------------------------------------------------------
    def journal_enqueue(self, digest: str, program_blob: bytes, tenant: str = "") -> bool:
        """Write-ahead enqueue of one job; returns whether it is now pending.

        Idempotent by digest: a job already ``queued``/``leased`` is left
        alone (``False``), while a settled ``done``/``failed`` row is
        re-armed to ``queued`` — the caller only enqueues when the result
        store missed, so a ``done`` row here means the result was evicted
        and must be recomputed.
        """
        now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE digest = ?", (digest,)
            ).fetchone()
            if row is not None and row[0] in ("queued", "leased"):
                return False
            self._conn.execute(
                """
                INSERT INTO jobs
                    (digest, program, tenant, state, lease_until, attempts,
                     error, created_at, updated_at)
                VALUES (?, ?, ?, 'queued', 0, 0, NULL, ?, ?)
                ON CONFLICT(digest) DO UPDATE SET
                    program = excluded.program, tenant = excluded.tenant,
                    state = 'queued', lease_until = 0, attempts = 0,
                    error = NULL, updated_at = excluded.updated_at
                """,
                (digest, sqlite3.Binary(program_blob), tenant, now, now),
            )
            self._conn.commit()
            self.journal_enqueued += 1
            return True

    def journal_claim(self, limit: int, lease_s: float) -> List[JournalJob]:
        """Lease up to ``limit`` claimable jobs to the calling worker.

        Claimable rows are ``queued`` rows plus ``leased`` rows whose lease
        expired (their worker died mid-wave).  Each claim marks the row
        ``leased`` until ``now + lease_s`` and increments its attempt
        count, so a job lost with its worker becomes claimable again once
        the lease runs out — at-least-once delivery.
        """
        if limit <= 0:
            return []
        now = time.time()
        claimed: List[JournalJob] = []
        with self._lock:
            rows = self._conn.execute(
                """
                SELECT digest, program, tenant, attempts FROM jobs
                WHERE state = 'queued' OR (state = 'leased' AND lease_until < ?)
                ORDER BY created_at ASC, digest ASC LIMIT ?
                """,
                (now, int(limit)),
            ).fetchall()
            for digest, blob, tenant, attempts in rows:
                self._conn.execute(
                    "UPDATE jobs SET state = 'leased', lease_until = ?, "
                    "attempts = ?, updated_at = ? WHERE digest = ?",
                    (now + float(lease_s), attempts + 1, now, digest),
                )
                blob = bytes(blob)
                if faults.should_inject("journal_corrupt"):
                    # A torn write or bad sector under the program column:
                    # the worker must settle the job failed, not die.
                    blob = b"\x00journal-garbage\xff" + blob[:8]
                claimed.append(
                    JournalJob(
                        digest=digest, program_blob=blob,
                        tenant=tenant, attempts=attempts + 1,
                    )
                )
            if claimed:
                self._conn.commit()
                self.journal_claimed += len(claimed)
        return claimed

    def journal_settle(
        self, digest: str, state: str, error: Optional[str] = None
    ) -> None:
        """Settle one leased job as ``done`` or ``failed``."""
        if state not in ("done", "failed"):
            raise ValueError(f"cannot settle a journal job as {state!r}")
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, lease_until = 0, error = ?, "
                "updated_at = ? WHERE digest = ?",
                (state, error, time.time(), digest),
            )
            self._conn.commit()
            if state == "done":
                self.journal_drained += 1
            else:
                self.journal_failed += 1

    def journal_requeue(self, digests: Sequence[str]) -> int:
        """Return leased jobs to ``queued`` immediately (dead-worker rescue)."""
        if not digests:
            return 0
        now = time.time()
        with self._lock:
            marks = ",".join("?" for _ in digests)
            cursor = self._conn.execute(
                f"UPDATE jobs SET state = 'queued', lease_until = 0, "
                f"updated_at = ? WHERE state = 'leased' AND digest IN ({marks})",
                (now, *digests),
            )
            self._conn.commit()
            self.journal_recovered += cursor.rowcount
            return cursor.rowcount

    def journal_recover(self) -> int:
        """Re-queue every expired lease; the startup/supervisor sweep.

        A restarted service calls this before draining so every job a dead
        worker held settles again — the digest-keyed result row makes the
        second run bit-identical and duplicate-free.
        """
        now = time.time()
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'queued', lease_until = 0, "
                "updated_at = ? WHERE state = 'leased' AND lease_until < ?",
                (now, now),
            )
            self._conn.commit()
            self.journal_recovered += cursor.rowcount
            return cursor.rowcount

    def journal_pending(self) -> int:
        """Unsettled journal depth (``queued`` + ``leased``) for backpressure."""
        with self._lock:
            (count,) = self._conn.execute(
                "SELECT COUNT(*) FROM jobs WHERE state IN ('queued', 'leased')"
            ).fetchone()
            return int(count)

    def journal_status(self, digest: str) -> Optional[Tuple[str, Optional[str], int]]:
        """``(state, error, attempts)`` of one journaled digest, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT state, error, attempts FROM jobs WHERE digest = ?", (digest,)
            ).fetchone()
            if row is None:
                return None
            return str(row[0]), row[1], int(row[2])

    def journal_prune(self, max_age_s: float) -> int:
        """Drop settled journal rows older than ``max_age_s`` seconds."""
        cutoff = time.time() - float(max_age_s)
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM jobs WHERE state IN ('done', 'failed') "
                "AND updated_at < ?",
                (cutoff,),
            )
            self._conn.commit()
            return cursor.rowcount

    def journal_counters(self) -> Dict[str, float]:
        """Journal metrics: per-state row counts plus lifetime traffic."""
        with self._lock:
            by_state = dict(
                self._conn.execute("SELECT state, COUNT(*) FROM jobs GROUP BY state")
            )
        counters = {state: float(by_state.get(state, 0)) for state in JOURNAL_STATES}
        counters.update(
            enqueued=float(self.journal_enqueued),
            claimed=float(self.journal_claimed),
            drained=float(self.journal_drained),
            settled_failed=float(self.journal_failed),
            recovered=float(self.journal_recovered),
        )
        return counters

    # -- migration ----------------------------------------------------------
    def import_disk_cache(self, directory: Union[str, Path]) -> int:
        """Import a flat-file memo directory (``<digest>.json`` envelopes).

        The migration path from the pre-service shared disk cache: every
        decodable, checksum-valid envelope of the current memo schema is
        inserted under its filename digest.  Corrupt, legacy-format or
        wrong-schema entries are skipped (the disk layer's own quarantine
        discipline already handles them).  Returns the number imported.
        """
        directory = Path(directory)
        imported = 0
        for path in sorted(directory.glob("*.json")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            flat, _reason = _decode_entry(text)
            if flat is None:
                continue
            self.put(path.stem, flat)
            imported += 1
        return imported

    # -- introspection ------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Store metrics for ``GET /stats``: size, traffic, hit rate."""
        total = self.hits + self.misses
        return {
            "entries": float(len(self)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "io_errors": float(self.io_errors),
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return (
            f"ResultStore({self.path!r}, {len(self)} entries, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evictions)"
        )

"""DB-backed shared result store: the memo layer's flat files grown a schema.

:class:`ResultStore` is the repo layer of the simulation service: one SQLite
database (stdlib :mod:`sqlite3`, WAL mode) holding simulation statistics
keyed on their ``sim_digest`` — the same content-addressed memoization key
the flat-file disk layer in :mod:`repro.sim.memo` uses, so the two backends
are interchangeable and mutually importable.  Rows are schema-versioned
twice over: by the store's own table layout
(:data:`SERVICE_SCHEMA_VERSION`) and by the memo semantic version
(:data:`~repro.sim.memo.CACHE_SCHEMA_VERSION`, which changes whenever
simulation *results* change).  A mismatch on either drops and recreates the
table — entries are content-addressed recomputables, never the only copy of
anything.

The store plugs straight into :class:`~repro.sim.memo.SimulationCache` as
its duck-typed ``store=`` backend (``get(key) -> flat dict | None`` /
``put(key, flat)``), putting it behind the cache's in-memory LRU and
in-flight coalescing, and is safe for many threads over one connection
(serialised by an internal lock; cross-process sharing goes through WAL).
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.sim.memo import CACHE_SCHEMA_VERSION, _decode_entry

#: Version of the store's own table layout.  Bump on layout changes; the
#: memo :data:`CACHE_SCHEMA_VERSION` is tracked separately in ``meta`` and
#: invalidates rows whenever simulation semantics change.
SERVICE_SCHEMA_VERSION = 1


def _canonical(flat: Dict[str, float]) -> str:
    return json.dumps(flat, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Shared simulation-result store over one SQLite database.

    ``max_entries`` bounds the table LRU-style on ``last_used`` (0 =
    unbounded); ``max_age_s`` additionally evicts rows not used within the
    window (0 = no age limit).  ``hits``/``misses``/``evictions`` count this
    store instance's traffic and are surfaced by ``GET /stats``.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        max_entries: int = 100_000,
        max_age_s: float = 0.0,
    ):
        self.path = str(path)
        self.max_entries = int(max_entries)
        self.max_age_s = float(max_age_s)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        with self._lock:
            self._ensure_schema()

    # -- schema -------------------------------------------------------------
    def _ensure_schema(self) -> None:
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        rows = dict(self._conn.execute("SELECT key, value FROM meta"))
        expected = {
            "service_schema": str(SERVICE_SCHEMA_VERSION),
            "memo_schema": str(CACHE_SCHEMA_VERSION),
        }
        if rows and rows != expected:
            # Stale layout or stale simulation semantics: every row is a
            # content-addressed recomputable, so drop instead of migrating.
            self._conn.execute("DROP TABLE IF EXISTS results")
            self._conn.execute("DELETE FROM meta")
            rows = {}
        if not rows:
            self._conn.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                sorted(expected.items()),
            )
        self._conn.execute(
            """
            CREATE TABLE IF NOT EXISTS results (
                digest     TEXT PRIMARY KEY,
                schema     INTEGER NOT NULL,
                stats      TEXT NOT NULL,
                sha256     TEXT NOT NULL,
                created_at REAL NOT NULL,
                last_used  REAL NOT NULL,
                use_count  INTEGER NOT NULL DEFAULT 0
            )
            """
        )
        self._conn.execute(
            "CREATE INDEX IF NOT EXISTS results_last_used ON results (last_used)"
        )
        self._conn.commit()

    # -- CRUD ---------------------------------------------------------------
    def get(self, digest: str) -> Optional[Dict[str, float]]:
        """Fetch one flat statistics snapshot; ``None`` on miss or corruption."""
        now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT stats, sha256, schema FROM results WHERE digest = ?", (digest,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            stats_json, checksum, schema = row
            if schema != CACHE_SCHEMA_VERSION or (
                hashlib.sha256(stats_json.encode("utf-8")).hexdigest() != checksum
            ):
                # Defensive: a corrupted or stale row is dropped and re-simulated.
                self._conn.execute("DELETE FROM results WHERE digest = ?", (digest,))
                self._conn.commit()
                self.misses += 1
                return None
            self._conn.execute(
                "UPDATE results SET last_used = ?, use_count = use_count + 1 "
                "WHERE digest = ?",
                (now, digest),
            )
            self._conn.commit()
            self.hits += 1
        try:
            flat = json.loads(stats_json)
            return {str(k): float(v) for k, v in flat.items()}
        except (ValueError, TypeError, AttributeError):
            return None

    def put(self, digest: str, flat: Dict[str, float]) -> None:
        """Insert or refresh one result (idempotent — keys are content hashes)."""
        normalised = {str(k): float(v) for k, v in flat.items()}
        stats_json = _canonical(normalised)
        checksum = hashlib.sha256(stats_json.encode("utf-8")).hexdigest()
        now = time.time()
        with self._lock:
            self._conn.execute(
                """
                INSERT INTO results
                    (digest, schema, stats, sha256, created_at, last_used, use_count)
                VALUES (?, ?, ?, ?, ?, ?, 0)
                ON CONFLICT(digest) DO UPDATE SET last_used = excluded.last_used
                """,
                (digest, CACHE_SCHEMA_VERSION, stats_json, checksum, now, now),
            )
            self._evict_locked(now)
            self._conn.commit()

    def _evict_locked(self, now: float) -> None:
        """Age- then LRU-evict; caller holds the lock and commits."""
        if self.max_age_s > 0:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE last_used < ?", (now - self.max_age_s,)
            )
            self.evictions += cursor.rowcount
        if self.max_entries > 0:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            overflow = count - self.max_entries
            if overflow > 0:
                cursor = self._conn.execute(
                    """
                    DELETE FROM results WHERE digest IN (
                        SELECT digest FROM results
                        ORDER BY last_used ASC, digest ASC LIMIT ?
                    )
                    """,
                    (overflow,),
                )
                self.evictions += cursor.rowcount

    def evict(self) -> int:
        """Apply the age/LRU policy now; returns total evictions so far."""
        with self._lock:
            self._evict_locked(time.time())
            self._conn.commit()
            return self.evictions

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM results").fetchone()
            return int(count)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE digest = ?", (digest,)
            ).fetchone()
            return row is not None

    # -- migration ----------------------------------------------------------
    def import_disk_cache(self, directory: Union[str, Path]) -> int:
        """Import a flat-file memo directory (``<digest>.json`` envelopes).

        The migration path from the pre-service shared disk cache: every
        decodable, checksum-valid envelope of the current memo schema is
        inserted under its filename digest.  Corrupt, legacy-format or
        wrong-schema entries are skipped (the disk layer's own quarantine
        discipline already handles them).  Returns the number imported.
        """
        directory = Path(directory)
        imported = 0
        for path in sorted(directory.glob("*.json")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            flat, _reason = _decode_entry(text)
            if flat is None:
                continue
            self.put(path.stem, flat)
            imported += 1
        return imported

    # -- introspection ------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Store metrics for ``GET /stats``: size, traffic, hit rate."""
        total = self.hits + self.misses
        return {
            "entries": float(len(self)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "evictions": float(self.evictions),
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return (
            f"ResultStore({self.path!r}, {len(self)} entries, "
            f"{self.hits} hits, {self.misses} misses, {self.evictions} evictions)"
        )

"""Simulation-as-a-service: shared result store, HTTP front door, workers.

The serving layer on top of the simulation engine (the ROADMAP's
"millions of users" direction): a SQLite-backed
:class:`~repro.service.store.ResultStore` replacing the flat-file disk memo
as the shared backend, an asyncio HTTP service
(:class:`~repro.service.server.ServiceServer`) with per-tenant API keys,
quotas and in-flight request coalescing, a
:class:`~repro.service.worker.SimulationWorker` pool draining misses through
arena-batched :class:`~repro.sim.BatchSimulator` waves, and a stdlib HTTP
:class:`~repro.service.client.ServiceClient` that plugs into the autotuning
registry.  Run one with ``python -m repro.cli serve``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import (
    ServiceServer,
    SimulationService,
    Tenant,
    hierarchy_from_dict,
)
from repro.service.store import SERVICE_SCHEMA_VERSION, ResultStore
from repro.service.worker import SimulationJob, SimulationWorker

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SimulationJob",
    "SimulationService",
    "SimulationWorker",
    "Tenant",
    "hierarchy_from_dict",
]

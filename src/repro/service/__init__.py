"""Simulation-as-a-service: shared result store, HTTP front door, workers.

The serving layer on top of the simulation engine (the ROADMAP's
"millions of users" direction): a SQLite-backed
:class:`~repro.service.store.ResultStore` replacing the flat-file disk memo
as the shared backend, an asyncio HTTP service
(:class:`~repro.service.server.ServiceServer`) with per-tenant API keys,
quotas and in-flight request coalescing, a
:class:`~repro.service.worker.SimulationWorker` pool draining misses through
arena-batched :class:`~repro.sim.BatchSimulator` waves, and a stdlib HTTP
:class:`~repro.service.client.ServiceClient` that plugs into the autotuning
registry.  Run one with ``python -m repro.cli serve``.

Survivability (see the README's failure-semantics section): ``wait=false``
jobs are written ahead to a durable journal in the store before they are
acknowledged, claimed under time-bounded leases and settled idempotently by
content digest, so a restarted service replays every pre-crash job to the
same bits; the worker pool is supervised; a circuit breaker sheds miss
traffic while the backend is faulting; and the client retries transport
faults and ``503`` shedding under a bounded, jittered policy.
"""

from repro.service.client import DEFAULT_CLIENT_RETRY, ServiceClient, ServiceError
from repro.service.server import (
    ServiceServer,
    SimulationService,
    Tenant,
    hierarchy_from_dict,
)
from repro.service.store import SERVICE_SCHEMA_VERSION, JournalJob, ResultStore
from repro.service.worker import SimulationJob, SimulationWorker

__all__ = [
    "DEFAULT_CLIENT_RETRY",
    "JournalJob",
    "SERVICE_SCHEMA_VERSION",
    "ResultStore",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SimulationJob",
    "SimulationService",
    "SimulationWorker",
    "Tenant",
    "hierarchy_from_dict",
]

"""HTTP client for the simulation service (stdlib :mod:`http.client` only).

:class:`ServiceClient` speaks the :mod:`repro.service.server` protocol and
rebuilds full :class:`~repro.sim.SimulationResult` objects from the
transported flat statistics (via :func:`repro.sim.memo.stats_from_flat`), so
service-backed callers receive the same object shape as local simulation —
bit-identical statistics, with ``host_seconds`` reporting the round-trip
time instead of the remote walk time (exactly the memoized-result
convention).

The client is resilient by default: transport-level failures (connection
refused/reset, a service restarting underneath the request) and ``503``
shedding responses are retried under a
:class:`~repro.reliability.RetryPolicy` — bounded attempts, exponential
backoff, deterministic jitter — honouring the server's ``Retry-After`` hint
when one is sent.  Every request the client makes is idempotent on the
server (``POST /simulate`` is keyed by content digest), so replays are
safe.  ``429`` quota/rate responses are *never* retried automatically: they
are a budget signal for the caller, not a transient fault.

:meth:`ServiceClient.simulator_run` adapts the client to the autotuning
registry's ``"autotvm.simulator_run"`` override signature, so a tuner can
run its whole measurement loop against a shared service::

    from repro.autotune.registry import register_func
    client = ServiceClient("http://127.0.0.1:8642", api_key="...")
    register_func("autotvm.simulator_run", client.simulator_run, override=True)
"""

from __future__ import annotations

import base64
import json
import pickle
import time
from dataclasses import asdict
from http.client import HTTPConnection
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.reliability import RetryPolicy
from repro.sim.hierarchy import CacheHierarchyConfig
from repro.sim.memo import stats_from_flat
from repro.sim.simulator import ResilientOutcome, SimulationFailure, SimulationResult


class ServiceError(RuntimeError):
    """A non-simulation protocol failure (auth, quota, malformed request)."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


#: Default transport retry: 4 attempts, 50 ms base backoff.  Modest on
#: purpose — enough to ride out a service restart or a breaker probe window
#: without turning a dead service into a minutes-long hang.
DEFAULT_CLIENT_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.05, max_delay_s=2.0)


class ServiceClient:
    """Blocking client for one simulation service endpoint."""

    def __init__(self, base_url: str, api_key: Optional[str] = None,
                 timeout_s: float = 600.0, retry: Optional[RetryPolicy] = None):
        parts = urlsplit(base_url)
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.api_key = api_key
        self.timeout_s = float(timeout_s)
        self.retry = retry if retry is not None else DEFAULT_CLIENT_RETRY
        #: Transport-level retries performed over this client's lifetime.
        self.retries = 0

    # -- transport ----------------------------------------------------------
    def _request_once(self, method: str, path: str, payload: Optional[dict] = None):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-Api-Key"] = self.api_key
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            return response.status, (json.loads(text) if text else {})
        finally:
            connection.close()

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        """One request under the retry policy.

        Connection faults (refused, reset mid-request, service restarting)
        and ``503`` shedding are retried with backoff, honouring the
        server's ``retry_after`` hint when present; ``429`` and every other
        definitive response return immediately.  All service requests are
        idempotent (simulation is keyed by content digest), so replaying a
        request whose response was lost is safe.
        """
        retry = self.retry
        for attempt in range(1, retry.max_attempts + 1):
            try:
                status, response = self._request_once(method, path, payload)
            except (ConnectionError, OSError):
                if attempt >= retry.max_attempts:
                    raise
                self.retries += 1
                time.sleep(retry.delay_s(attempt, key=path))
                continue
            if status == 503 and attempt < retry.max_attempts:
                hint = 0.0
                if isinstance(response, dict) and "retry_after" in response:
                    try:
                        hint = float(response["retry_after"])
                    except (TypeError, ValueError):
                        hint = 0.0
                self.retries += 1
                time.sleep(
                    max(retry.delay_s(attempt, key=path), min(hint, retry.max_delay_s))
                )
                continue
            return status, response
        raise AssertionError("unreachable: retry loop exits by return or raise")

    @staticmethod
    def _decode_outcome(payload: dict, host_seconds: float) -> ResilientOutcome:
        if payload.get("status") == "failed":
            return SimulationFailure(
                program_name=payload.get("program_name", ""),
                kind=payload.get("kind", SimulationFailure.ERROR),
                error=payload.get("error", ""),
                attempts=int(payload.get("attempts", 1)),
                host_seconds=host_seconds,
            )
        flat = {str(k): float(v) for k, v in payload["stats"].items()}
        stats = stats_from_flat(flat)
        stats.group("sim").set("host_seconds", host_seconds)
        return SimulationResult(
            program_name=payload.get("program_name", ""),
            arch=payload.get("arch", ""),
            stats=stats,
            trace_accesses=int(payload.get("trace_accesses", 0)),
            host_seconds=host_seconds,
            cached=bool(payload.get("cached", False)),
            sim_digest=payload.get("digest", ""),
        )

    # -- API ----------------------------------------------------------------
    def simulate(
        self,
        program,
        hierarchy: Optional[CacheHierarchyConfig] = None,
        wait: bool = True,
    ) -> ResilientOutcome:
        """Simulate one program through the service.

        Returns a :class:`SimulationResult` (statistics bit-identical to a
        local run, ``host_seconds`` = round-trip time) or a structured
        :class:`SimulationFailure`.  Raises :class:`ServiceError` only for
        protocol-level failures (auth, quota, malformed payloads).
        """
        start = time.perf_counter()
        payload: Dict[str, object] = {
            "program": base64.b64encode(pickle.dumps(program)).decode("ascii"),
            "wait": wait,
        }
        if hierarchy is not None:
            payload["hierarchy"] = asdict(hierarchy)
        status, body = self._request("POST", "/simulate", payload)
        elapsed = time.perf_counter() - start
        if status in (200, 500) and body.get("status") in ("done", "failed"):
            return self._decode_outcome(body, elapsed)
        if status == 202:
            return SimulationFailure(
                program_name=getattr(program, "name", ""),
                kind=SimulationFailure.TIMEOUT,
                error=f"queued as {body.get('digest', '?')}; poll /results/{{digest}}",
                host_seconds=elapsed,
            )
        raise ServiceError(status, body)

    def simulate_batch(
        self, programs: Sequence, hierarchy: Optional[CacheHierarchyConfig] = None
    ) -> List[ResilientOutcome]:
        """Simulate many programs (one request each, coalesced server-side)."""
        return [self.simulate(program, hierarchy) for program in programs]

    def result(self, digest: str) -> Optional[ResilientOutcome]:
        """Fetch a settled outcome by digest.

        Returns the stored :class:`SimulationResult`, a
        :class:`SimulationFailure` when the journal settled the job as
        failed, or ``None`` while the digest is unknown or still
        queued/leased.
        """
        start = time.perf_counter()
        status, body = self._request("GET", f"/results/{digest}")
        if status in (404, 202):
            return None
        if status == 500 and body.get("status") == "failed":
            return self._decode_outcome(body, time.perf_counter() - start)
        if status != 200:
            raise ServiceError(status, body)
        return self._decode_outcome(body, time.perf_counter() - start)

    def wait_result(
        self, digest: str, deadline_s: float = 60.0, poll_s: float = 0.05
    ) -> ResilientOutcome:
        """Poll ``/results/{digest}`` until the job settles.

        The companion to ``simulate(wait=False)``: returns the stored result
        or the journaled failure once the service (or its restarted
        successor) settles the digest.  Raises :class:`TimeoutError` if the
        deadline passes first.
        """
        deadline = time.monotonic() + float(deadline_s)
        while True:
            outcome = self.result(digest)
            if outcome is not None:
                return outcome
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"digest {digest} did not settle within {deadline_s:g}s"
                )
            time.sleep(poll_s)

    def stats(self) -> dict:
        """The service's ``GET /stats`` counters."""
        status, body = self._request("GET", "/stats")
        if status != 200:
            raise ServiceError(status, body)
        return body

    def healthy(self) -> bool:
        """Whether the service answers its liveness probe."""
        try:
            status, body = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200 and body.get("status") == "ok"

    # -- autotuning adapter -------------------------------------------------
    def simulator_run(self, programs, arch=None, n_parallel=None) -> List[ResilientOutcome]:
        """``"autotvm.simulator_run"`` registry adapter: tuner → service.

        Matches the external-simulator override signature of
        :meth:`repro.autotune.runner.SimulatorRunner.simulator_run`
        (``arch``/``n_parallel`` are fixed service-side and ignored here).
        """
        return self.simulate_batch(programs)

"""HTTP client for the simulation service (stdlib :mod:`http.client` only).

:class:`ServiceClient` speaks the :mod:`repro.service.server` protocol and
rebuilds full :class:`~repro.sim.SimulationResult` objects from the
transported flat statistics (via :func:`repro.sim.memo.stats_from_flat`), so
service-backed callers receive the same object shape as local simulation —
bit-identical statistics, with ``host_seconds`` reporting the round-trip
time instead of the remote walk time (exactly the memoized-result
convention).

:meth:`ServiceClient.simulator_run` adapts the client to the autotuning
registry's ``"autotvm.simulator_run"`` override signature, so a tuner can
run its whole measurement loop against a shared service::

    from repro.autotune.registry import register_func
    client = ServiceClient("http://127.0.0.1:8642", api_key="...")
    register_func("autotvm.simulator_run", client.simulator_run, override=True)
"""

from __future__ import annotations

import base64
import json
import pickle
import time
from dataclasses import asdict
from http.client import HTTPConnection
from typing import Dict, List, Optional, Sequence
from urllib.parse import urlsplit

from repro.sim.hierarchy import CacheHierarchyConfig
from repro.sim.memo import stats_from_flat
from repro.sim.simulator import ResilientOutcome, SimulationFailure, SimulationResult


class ServiceError(RuntimeError):
    """A non-simulation protocol failure (auth, quota, malformed request)."""

    def __init__(self, status: int, payload: dict):
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Blocking client for one simulation service endpoint."""

    def __init__(self, base_url: str, api_key: Optional[str] = None,
                 timeout_s: float = 600.0):
        parts = urlsplit(base_url)
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.api_key = api_key
        self.timeout_s = float(timeout_s)

    # -- transport ----------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        headers = {"Content-Type": "application/json"}
        if self.api_key is not None:
            headers["X-Api-Key"] = self.api_key
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            return response.status, (json.loads(text) if text else {})
        finally:
            connection.close()

    @staticmethod
    def _decode_outcome(payload: dict, host_seconds: float) -> ResilientOutcome:
        if payload.get("status") == "failed":
            return SimulationFailure(
                program_name=payload.get("program_name", ""),
                kind=payload.get("kind", SimulationFailure.ERROR),
                error=payload.get("error", ""),
                attempts=int(payload.get("attempts", 1)),
                host_seconds=host_seconds,
            )
        flat = {str(k): float(v) for k, v in payload["stats"].items()}
        stats = stats_from_flat(flat)
        stats.group("sim").set("host_seconds", host_seconds)
        return SimulationResult(
            program_name=payload.get("program_name", ""),
            arch=payload.get("arch", ""),
            stats=stats,
            trace_accesses=int(payload.get("trace_accesses", 0)),
            host_seconds=host_seconds,
            cached=bool(payload.get("cached", False)),
            sim_digest=payload.get("digest", ""),
        )

    # -- API ----------------------------------------------------------------
    def simulate(
        self,
        program,
        hierarchy: Optional[CacheHierarchyConfig] = None,
        wait: bool = True,
    ) -> ResilientOutcome:
        """Simulate one program through the service.

        Returns a :class:`SimulationResult` (statistics bit-identical to a
        local run, ``host_seconds`` = round-trip time) or a structured
        :class:`SimulationFailure`.  Raises :class:`ServiceError` only for
        protocol-level failures (auth, quota, malformed payloads).
        """
        start = time.perf_counter()
        payload: Dict[str, object] = {
            "program": base64.b64encode(pickle.dumps(program)).decode("ascii"),
            "wait": wait,
        }
        if hierarchy is not None:
            payload["hierarchy"] = asdict(hierarchy)
        status, body = self._request("POST", "/simulate", payload)
        elapsed = time.perf_counter() - start
        if status in (200, 500) and body.get("status") in ("done", "failed"):
            return self._decode_outcome(body, elapsed)
        if status == 202:
            return SimulationFailure(
                program_name=getattr(program, "name", ""),
                kind=SimulationFailure.TIMEOUT,
                error=f"queued as {body.get('digest', '?')}; poll /results/{{digest}}",
                host_seconds=elapsed,
            )
        raise ServiceError(status, body)

    def simulate_batch(
        self, programs: Sequence, hierarchy: Optional[CacheHierarchyConfig] = None
    ) -> List[ResilientOutcome]:
        """Simulate many programs (one request each, coalesced server-side)."""
        return [self.simulate(program, hierarchy) for program in programs]

    def result(self, digest: str) -> Optional[SimulationResult]:
        """Fetch a stored result by digest; ``None`` when unknown."""
        start = time.perf_counter()
        status, body = self._request("GET", f"/results/{digest}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(status, body)
        outcome = self._decode_outcome(body, time.perf_counter() - start)
        assert isinstance(outcome, SimulationResult)
        return outcome

    def stats(self) -> dict:
        """The service's ``GET /stats`` counters."""
        status, body = self._request("GET", "/stats")
        if status != 200:
            raise ServiceError(status, body)
        return body

    def healthy(self) -> bool:
        """Whether the service answers its liveness probe."""
        try:
            status, body = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200 and body.get("status") == "ok"

    # -- autotuning adapter -------------------------------------------------
    def simulator_run(self, programs, arch=None, n_parallel=None) -> List[ResilientOutcome]:
        """``"autotvm.simulator_run"`` registry adapter: tuner → service.

        Matches the external-simulator override signature of
        :meth:`repro.autotune.runner.SimulatorRunner.simulator_run`
        (``arch``/``n_parallel`` are fixed service-side and ignored here).
        """
        return self.simulate_batch(programs)

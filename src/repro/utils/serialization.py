"""JSON serialisation helpers for experiment records."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Convert ``obj`` (dataclasses, numpy types, containers) to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    return obj


def dump_json(obj: Any, path: str | Path) -> None:
    """Serialise ``obj`` to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(to_jsonable(obj), indent=2), encoding="utf-8")


def load_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))

"""Shared utilities: deterministic RNG derivation, serialisation and tables."""

from repro.utils.rng import derive_seed, new_generator
from repro.utils.tabulate import format_table
from repro.utils.serialization import to_jsonable, dump_json, load_json

__all__ = [
    "derive_seed",
    "new_generator",
    "format_table",
    "to_jsonable",
    "dump_json",
    "load_json",
]

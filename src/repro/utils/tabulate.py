"""Minimal plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = ".2f",
    title: str | None = None,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are formatted with ``float_fmt``; all other values use ``str``.
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)

"""Deterministic random-number handling.

Every stochastic component in the library (tuners, noise models, predictor
initialisation) takes an explicit seed.  To avoid accidental correlation
between components that happen to receive the same integer, seeds are derived
from a root seed plus a string label using a stable hash.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from ``root_seed`` and a sequence of labels.

    The derivation is stable across processes and Python versions (it does not
    rely on ``hash()``), so experiment runs are reproducible.

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    labels:
        Any printable objects identifying the consumer (e.g. ``"tuner"``,
        ``("group", 3)``).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"\x00")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") % (2**31 - 1)


def new_generator(seed: int, *labels: object) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``seed`` and ``labels``."""
    if labels:
        seed = derive_seed(seed, *labels)
    return np.random.default_rng(seed)

"""Expression tree for the tensor-expression DSL.

Expressions are small immutable nodes with operator overloading so that
compute bodies read like ordinary arithmetic (``A[i, k] * B[k, j]``).  The
code generator later analyses these trees, so the node set is deliberately
small: variables, constants, binary arithmetic, comparisons, boolean logic,
select, tensor reads and reductions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Binary arithmetic operators supported by :class:`BinaryOp`.
ARITH_OPS = ("add", "sub", "mul", "div", "floordiv", "mod", "min", "max")
#: Comparison operators supported by :class:`CmpOp`.
CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")
#: Boolean connectives supported by :class:`LogicalOp`.
LOGICAL_OPS = ("and", "or")


class ExprOps:
    """Mixin providing Python operator overloading that builds expression nodes."""

    def _as_expr(self) -> "Expr":
        raise NotImplementedError

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other):
        return BinaryOp("add", self._as_expr(), wrap(other))

    def __radd__(self, other):
        return BinaryOp("add", wrap(other), self._as_expr())

    def __sub__(self, other):
        return BinaryOp("sub", self._as_expr(), wrap(other))

    def __rsub__(self, other):
        return BinaryOp("sub", wrap(other), self._as_expr())

    def __mul__(self, other):
        return BinaryOp("mul", self._as_expr(), wrap(other))

    def __rmul__(self, other):
        return BinaryOp("mul", wrap(other), self._as_expr())

    def __truediv__(self, other):
        return BinaryOp("div", self._as_expr(), wrap(other))

    def __floordiv__(self, other):
        return BinaryOp("floordiv", self._as_expr(), wrap(other))

    def __mod__(self, other):
        return BinaryOp("mod", self._as_expr(), wrap(other))

    def __neg__(self):
        return BinaryOp("sub", IntImm(0), self._as_expr())

    # -- comparisons -----------------------------------------------------
    def __lt__(self, other):
        return CmpOp("lt", self._as_expr(), wrap(other))

    def __le__(self, other):
        return CmpOp("le", self._as_expr(), wrap(other))

    def __gt__(self, other):
        return CmpOp("gt", self._as_expr(), wrap(other))

    def __ge__(self, other):
        return CmpOp("ge", self._as_expr(), wrap(other))

    def equal(self, other):
        """Element comparison ``self == other`` as an expression node."""
        return CmpOp("eq", self._as_expr(), wrap(other))

    def not_equal(self, other):
        """Element comparison ``self != other`` as an expression node."""
        return CmpOp("ne", self._as_expr(), wrap(other))


class Expr(ExprOps):
    """Base class of all expression nodes."""

    #: Child field names, overridden by subclasses for generic traversal.
    _fields: Tuple[str, ...] = ()

    def _as_expr(self) -> "Expr":
        return self

    def children(self) -> List["Expr"]:
        """Return the direct sub-expressions of this node."""
        out: List[Expr] = []
        for name in self._fields:
            value = getattr(self, name)
            if isinstance(value, Expr):
                out.append(value)
            elif isinstance(value, (list, tuple)):
                out.extend(v for v in value if isinstance(v, Expr))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({', '.join(repr(getattr(self, f)) for f in self._fields)})"

    # Expressions are used as dict keys in several passes; identity semantics
    # are intentional (two structurally equal nodes are distinct objects).
    __hash__ = object.__hash__


class Var(Expr):
    """A scalar integer variable, typically a loop index."""

    _fields = ()

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Var({self.name})"


class IntImm(Expr):
    """Integer constant."""

    _fields = ()

    def __init__(self, value: int):
        self.value = int(value)

    def __repr__(self) -> str:
        return f"{self.value}"


class FloatImm(Expr):
    """Floating-point constant."""

    _fields = ()

    def __init__(self, value: float):
        self.value = float(value)

    def __repr__(self) -> str:
        return f"{self.value}f"


class BinaryOp(Expr):
    """Binary arithmetic node (``op`` is one of :data:`ARITH_OPS`)."""

    _fields = ("a", "b")

    def __init__(self, op: str, a: "Expr", b: "Expr"):
        if op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.a = wrap(a)
        self.b = wrap(b)


class CmpOp(Expr):
    """Comparison node (``op`` is one of :data:`CMP_OPS`)."""

    _fields = ("a", "b")

    def __init__(self, op: str, a: "Expr", b: "Expr"):
        if op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.a = wrap(a)
        self.b = wrap(b)


class LogicalOp(Expr):
    """Boolean connective (``and`` / ``or``) of two predicate expressions."""

    _fields = ("a", "b")

    def __init__(self, op: str, a: "Expr", b: "Expr"):
        if op not in LOGICAL_OPS:
            raise ValueError(f"unknown logical operator {op!r}")
        self.op = op
        self.a = wrap(a)
        self.b = wrap(b)


class NotOp(Expr):
    """Boolean negation of a predicate expression."""

    _fields = ("a",)

    def __init__(self, a: "Expr"):
        self.a = wrap(a)


class Select(Expr):
    """Ternary select: ``cond ? true_value : false_value``."""

    _fields = ("cond", "true_value", "false_value")

    def __init__(self, cond: "Expr", true_value: "Expr", false_value: "Expr"):
        self.cond = wrap(cond)
        self.true_value = wrap(true_value)
        self.false_value = wrap(false_value)


class TensorRead(Expr):
    """A read of one element of a tensor at multi-dimensional indices."""

    _fields = ("indices",)

    def __init__(self, tensor, indices: Sequence["Expr"]):
        self.tensor = tensor
        self.indices = [wrap(i) for i in indices]

    def __repr__(self) -> str:
        return f"{self.tensor.name}[{', '.join(map(repr, self.indices))}]"


class Reduce(Expr):
    """A commutative reduction of ``source`` over ``axes``.

    ``kind`` is ``"sum"`` or ``"max"``; ``init`` is the identity element.
    """

    _fields = ("source",)

    def __init__(self, kind: str, source: "Expr", axes: Sequence, init: "Expr"):
        if kind not in ("sum", "max"):
            raise ValueError(f"unsupported reduction kind {kind!r}")
        self.kind = kind
        self.source = wrap(source)
        self.axes = list(axes)
        self.init = wrap(init)


def wrap(value: Union["Expr", ExprOps, Number]) -> "Expr":
    """Coerce Python numbers (and IterVars) into expression nodes."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, ExprOps):
        return value._as_expr()
    if isinstance(value, bool):
        return IntImm(int(value))
    if isinstance(value, int):
        return IntImm(value)
    if isinstance(value, float):
        return FloatImm(value)
    raise TypeError(f"cannot convert {value!r} to an expression")


def const(value: Number) -> Expr:
    """Create a constant expression from a Python number."""
    return wrap(value)


def max_expr(a, b) -> Expr:
    """Element-wise maximum expression node."""
    return BinaryOp("max", wrap(a), wrap(b))


def min_expr(a, b) -> Expr:
    """Element-wise minimum expression node."""
    return BinaryOp("min", wrap(a), wrap(b))


def post_order_visit(expr: Expr, visitor: Callable[[Expr], None]) -> None:
    """Visit ``expr`` and all sub-expressions in post order (children first)."""
    for child in expr.children():
        post_order_visit(child, visitor)
    visitor(expr)


def substitute(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    """Return a copy of ``expr`` with variables replaced according to ``mapping``.

    The mapping keys are :class:`Var` objects compared by identity, which
    matches how loop variables are created exactly once per axis.
    """
    if isinstance(expr, Var):
        return mapping.get(expr, expr)
    if isinstance(expr, (IntImm, FloatImm)):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, CmpOp):
        return CmpOp(expr.op, substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, LogicalOp):
        return LogicalOp(expr.op, substitute(expr.a, mapping), substitute(expr.b, mapping))
    if isinstance(expr, NotOp):
        return NotOp(substitute(expr.a, mapping))
    if isinstance(expr, Select):
        return Select(
            substitute(expr.cond, mapping),
            substitute(expr.true_value, mapping),
            substitute(expr.false_value, mapping),
        )
    if isinstance(expr, TensorRead):
        return TensorRead(expr.tensor, [substitute(i, mapping) for i in expr.indices])
    if isinstance(expr, Reduce):
        return Reduce(expr.kind, substitute(expr.source, mapping), expr.axes, expr.init)
    raise TypeError(f"cannot substitute in expression of type {type(expr).__name__}")


def simplify(expr: Expr) -> Expr:
    """Perform light constant folding (enough to keep lowered indices small)."""
    if isinstance(expr, BinaryOp):
        a = simplify(expr.a)
        b = simplify(expr.b)
        if isinstance(a, IntImm) and isinstance(b, IntImm):
            return IntImm(_fold_int(expr.op, a.value, b.value))
        if expr.op == "add":
            if isinstance(a, IntImm) and a.value == 0:
                return b
            if isinstance(b, IntImm) and b.value == 0:
                return a
        if expr.op == "sub" and isinstance(b, IntImm) and b.value == 0:
            return a
        if expr.op == "mul":
            if isinstance(a, IntImm) and a.value == 1:
                return b
            if isinstance(b, IntImm) and b.value == 1:
                return a
            if (isinstance(a, IntImm) and a.value == 0) or (
                isinstance(b, IntImm) and b.value == 0
            ):
                return IntImm(0)
        return BinaryOp(expr.op, a, b)
    if isinstance(expr, CmpOp):
        return CmpOp(expr.op, simplify(expr.a), simplify(expr.b))
    if isinstance(expr, LogicalOp):
        return LogicalOp(expr.op, simplify(expr.a), simplify(expr.b))
    if isinstance(expr, NotOp):
        return NotOp(simplify(expr.a))
    if isinstance(expr, Select):
        return Select(simplify(expr.cond), simplify(expr.true_value), simplify(expr.false_value))
    if isinstance(expr, TensorRead):
        return TensorRead(expr.tensor, [simplify(i) for i in expr.indices])
    if isinstance(expr, Reduce):
        return Reduce(expr.kind, simplify(expr.source), expr.axes, expr.init)
    return expr


def _fold_int(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return a // b
    if op == "floordiv":
        return a // b
    if op == "mod":
        return a % b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise ValueError(f"cannot fold operator {op!r}")


def affine_form(
    expr: Expr, variables: Iterable[Var]
) -> Optional[Tuple[Dict[Var, int], int]]:
    """Decompose an integer expression as ``sum(coeff_i * var_i) + const``.

    Returns ``(coefficients, constant)`` if ``expr`` is affine in
    ``variables`` with integer coefficients, otherwise ``None``.  This is what
    the code generator uses to turn tensor indices into strided memory-access
    descriptors.
    """
    var_set = set(variables)

    def walk(node: Expr) -> Optional[Tuple[Dict[Var, int], int]]:
        if isinstance(node, IntImm):
            return {}, node.value
        if isinstance(node, Var):
            if node in var_set:
                return {node: 1}, 0
            return None
        if isinstance(node, BinaryOp):
            left = walk(node.a)
            right = walk(node.b)
            if left is None or right is None:
                return None
            lcoef, lconst = left
            rcoef, rconst = right
            if node.op == "add":
                return _merge(lcoef, rcoef, 1), lconst + rconst
            if node.op == "sub":
                return _merge(lcoef, rcoef, -1), lconst - rconst
            if node.op == "mul":
                if not lcoef:
                    return {v: c * lconst for v, c in rcoef.items()}, lconst * rconst
                if not rcoef:
                    return {v: c * rconst for v, c in lcoef.items()}, lconst * rconst
                return None
            if node.op in ("div", "floordiv") and not lcoef and not rcoef:
                return {}, lconst // rconst
            return None
        return None

    def _merge(a: Dict[Var, int], b: Dict[Var, int], sign: int) -> Dict[Var, int]:
        out = dict(a)
        for v, c in b.items():
            out[v] = out.get(v, 0) + sign * c
        return {v: c for v, c in out.items() if c != 0}

    return walk(expr)

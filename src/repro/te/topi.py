"""Operator library (TVM ``topi`` stand-in) for the kernels used in the paper.

All operators are expressed with :func:`repro.te.compute`; they carry no data
and no implementation — schedules decide the implementation later.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.te.expr import Expr, LogicalOp, Select, max_expr, wrap
from repro.te.tensor import IterVar, Tensor, compute, reduce_axis, sum_reduce

IntPair = Union[int, Tuple[int, int], Sequence[int]]


def _as_pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return value, value
    pair = tuple(int(v) for v in value)
    if len(pair) != 2:
        raise ValueError(f"expected an int or a pair, got {value!r}")
    return pair


def matmul(a: Tensor, b: Tensor, name: str = "matmul") -> Tensor:
    """Matrix-matrix multiplication ``C[i, j] = sum_k A[i, k] * B[k, j]``."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul expects two 2-D tensors")
    n, l_dim = a.shape
    l_dim2, m = b.shape
    if l_dim != l_dim2:
        raise ValueError(f"matmul shape mismatch: {a.shape} x {b.shape}")
    k = reduce_axis((0, l_dim), name=f"{name}.k")
    return compute(
        (n, m),
        lambda i, j: sum_reduce(a[i, k] * b[k, j], axis=k),
        name=name,
    )


def pad(
    data: Tensor,
    pad_before: Sequence[int],
    pad_after: Sequence[int],
    pad_value: float = 0.0,
    name: str = "pad",
) -> Tensor:
    """Zero-pad ``data``; returns a compute stage reading the interior region."""
    if len(pad_before) != data.ndim or len(pad_after) != data.ndim:
        raise ValueError("pad_before/pad_after must have one entry per dimension")
    out_shape = tuple(
        dim + before + after for dim, before, after in zip(data.shape, pad_before, pad_after)
    )

    def body(*indices: IterVar) -> Expr:
        conditions = []
        source_indices = []
        for index, before, after, dim in zip(indices, pad_before, pad_after, data.shape):
            source_indices.append(index - before if before else wrap(index))
            if before > 0:
                conditions.append(wrap(index) >= before)
            if after > 0:
                conditions.append(wrap(index) < before + dim)
        if not conditions:
            return data[tuple(source_indices)]
        cond = conditions[0]
        for extra in conditions[1:]:
            cond = LogicalOp("and", cond, extra)
        return Select(cond, data[tuple(source_indices)], wrap(pad_value))

    return compute(out_shape, body, name=name)


def conv2d_nchw(
    ifm: Tensor,
    weights: Tensor,
    stride: IntPair = 1,
    padding: IntPair = 0,
    name: str = "conv2d",
) -> Tensor:
    """2-D convolution in NCHW layout (weights in OIHW layout).

    Matches ``topi.nn.conv2d_nchw``: output shape is
    ``(N, CO, (H + 2*pad_h - KH) // stride_h + 1, (W + 2*pad_w - KW) // stride_w + 1)``.
    """
    if ifm.ndim != 4 or weights.ndim != 4:
        raise ValueError("conv2d_nchw expects 4-D input and weight tensors")
    batch, in_channels, height, width = ifm.shape
    out_channels, in_channels_w, kernel_h, kernel_w = weights.shape
    if in_channels != in_channels_w:
        raise ValueError(
            f"input has {in_channels} channels but weights expect {in_channels_w}"
        )
    stride_h, stride_w = _as_pair(stride)
    pad_h, pad_w = _as_pair(padding)
    out_h = (height + 2 * pad_h - kernel_h) // stride_h + 1
    out_w = (width + 2 * pad_w - kernel_w) // stride_w + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError("convolution output would be empty; check shapes and padding")

    if pad_h or pad_w:
        data = pad(ifm, (0, 0, pad_h, pad_w), (0, 0, pad_h, pad_w), name=f"{name}.pad")
    else:
        data = ifm

    ci = reduce_axis((0, in_channels), name=f"{name}.ci")
    kh = reduce_axis((0, kernel_h), name=f"{name}.kh")
    kw = reduce_axis((0, kernel_w), name=f"{name}.kw")
    return compute(
        (batch, out_channels, out_h, out_w),
        lambda n, co, oh, ow: sum_reduce(
            data[n, ci, oh * stride_h + kh, ow * stride_w + kw] * weights[co, ci, kh, kw],
            axis=[ci, kh, kw],
        ),
        name=name,
    )


def bias_add(data: Tensor, bias: Tensor, name: str = "bias_add") -> Tensor:
    """Add a per-channel bias (bias shape ``(N, C, 1, 1)`` or ``(C,)``) to NCHW data."""
    if data.ndim != 4:
        raise ValueError("bias_add expects a 4-D NCHW tensor")
    if bias.ndim == 1:
        return compute(
            data.shape,
            lambda n, c, h, w: data[n, c, h, w] + bias[c],
            name=name,
        )
    if bias.ndim == 4 and bias.shape[2] == 1 and bias.shape[3] == 1:
        return compute(
            data.shape,
            lambda n, c, h, w: data[n, c, h, w] + bias[n, c, 0, 0],
            name=name,
        )
    raise ValueError(f"unsupported bias shape {bias.shape}")


def relu(data: Tensor, name: str = "relu") -> Tensor:
    """Element-wise rectified linear unit."""

    def body(*indices: IterVar) -> Expr:
        return max_expr(data[tuple(indices)], 0.0)

    return compute(data.shape, body, name=name)


def elementwise_add(a: Tensor, b: Tensor, name: str = "add") -> Tensor:
    """Element-wise addition of two tensors with identical shapes."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {b.shape}")

    def body(*indices: IterVar) -> Expr:
        return a[tuple(indices)] + b[tuple(indices)]

    return compute(a.shape, body, name=name)


def dense(data: Tensor, weight: Tensor, name: str = "dense") -> Tensor:
    """Fully connected layer ``Y[i, j] = sum_k X[i, k] * W[j, k]``."""
    if data.ndim != 2 or weight.ndim != 2:
        raise ValueError("dense expects two 2-D tensors")
    batch, in_dim = data.shape
    out_dim, in_dim_w = weight.shape
    if in_dim != in_dim_w:
        raise ValueError(f"dense shape mismatch: {data.shape} x {weight.shape}")
    k = reduce_axis((0, in_dim), name=f"{name}.k")
    return compute(
        (batch, out_dim),
        lambda i, j: sum_reduce(data[i, k] * weight[j, k], axis=k),
        name=name,
    )

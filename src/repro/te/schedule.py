"""Schedules: loop transformations applied on top of compute definitions.

A :class:`Schedule` owns one :class:`Stage` per operation.  Stages record
splits, fusions, reorderings and loop annotations (unroll / vectorize /
parallel); lowering replays these records to build the final loop nest.  The
set of supported primitives matches what the paper's design spaces use
(AutoTVM ``define_split`` templates and the Auto-Scheduler's tile-and-annotate
sketches).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.te.operation import ComputeOp, Operation, PlaceholderOp, collect_ops
from repro.te.tensor import IterVar, Tensor


class SplitRelation:
    """Record of ``parent`` being split into ``outer`` and ``inner``."""

    def __init__(self, parent: IterVar, outer: IterVar, inner: IterVar, factor: int):
        self.parent = parent
        self.outer = outer
        self.inner = inner
        self.factor = factor

    def __repr__(self) -> str:
        return f"Split({self.parent.name} -> {self.outer.name} * {self.factor} + {self.inner.name})"


class FuseRelation:
    """Record of ``outer`` and ``inner`` being fused into ``fused``."""

    def __init__(self, fused: IterVar, outer: IterVar, inner: IterVar):
        self.fused = fused
        self.outer = outer
        self.inner = inner

    def __repr__(self) -> str:
        return f"Fuse(({self.outer.name}, {self.inner.name}) -> {self.fused.name})"


Relation = Union[SplitRelation, FuseRelation]

#: Loop annotations a stage can attach to an iteration variable.
ANNOTATION_KINDS = ("unroll", "vectorize", "parallel")


class Stage:
    """Schedule state for one operation."""

    def __init__(self, op: Operation):
        self.op = op
        if isinstance(op, ComputeOp):
            self.leaf_iter_vars: List[IterVar] = list(op.axis) + list(op.reduce_axis)
        else:
            self.leaf_iter_vars = []
        self.relations: List[Relation] = []
        self.annotations: Dict[IterVar, str] = {}
        self.inlined = False

    # -- transformation primitives --------------------------------------
    def split(
        self,
        iter_var: IterVar,
        factor: Optional[int] = None,
        nparts: Optional[int] = None,
    ) -> Tuple[IterVar, IterVar]:
        """Split ``iter_var`` into an (outer, inner) pair.

        Exactly one of ``factor`` (inner extent) or ``nparts`` (outer extent)
        must be given.  The split may be imperfect; lowering adds a guard when
        the padded iteration space exceeds the original extent.
        """
        self._check_leaf(iter_var)
        if (factor is None) == (nparts is None):
            raise ValueError("split requires exactly one of factor or nparts")
        if factor is not None:
            if factor <= 0:
                raise ValueError(f"split factor must be positive, got {factor}")
            inner_extent = min(factor, iter_var.extent)
            outer_extent = math.ceil(iter_var.extent / inner_extent)
        else:
            if nparts <= 0:
                raise ValueError(f"split nparts must be positive, got {nparts}")
            outer_extent = min(nparts, iter_var.extent)
            inner_extent = math.ceil(iter_var.extent / outer_extent)
        outer = IterVar(outer_extent, f"{iter_var.name}.o", kind=iter_var.kind)
        inner = IterVar(inner_extent, f"{iter_var.name}.i", kind=iter_var.kind)
        self.relations.append(SplitRelation(iter_var, outer, inner, inner_extent))
        index = self.leaf_iter_vars.index(iter_var)
        self.leaf_iter_vars[index : index + 1] = [outer, inner]
        return outer, inner

    def fuse(self, outer: IterVar, inner: IterVar) -> IterVar:
        """Fuse two adjacent leaf iteration variables into one."""
        self._check_leaf(outer)
        self._check_leaf(inner)
        index_outer = self.leaf_iter_vars.index(outer)
        index_inner = self.leaf_iter_vars.index(inner)
        if index_inner != index_outer + 1:
            raise ValueError(
                f"can only fuse adjacent loops, got positions {index_outer} and {index_inner}"
            )
        if outer.kind != inner.kind:
            raise ValueError("cannot fuse a spatial axis with a reduction axis")
        fused = IterVar(
            outer.extent * inner.extent, f"{outer.name}.{inner.name}.f", kind=outer.kind
        )
        self.relations.append(FuseRelation(fused, outer, inner))
        self.leaf_iter_vars[index_outer : index_outer + 2] = [fused]
        return fused

    def reorder(self, *iter_vars: IterVar) -> None:
        """Reorder the given leaf loops into the listed order.

        Loops not mentioned keep their relative positions; the mentioned loops
        are placed, in order, into the positions they previously occupied.
        """
        for iv in iter_vars:
            self._check_leaf(iv)
        if len(set(map(id, iter_vars))) != len(iter_vars):
            raise ValueError("reorder arguments must be distinct")
        positions = sorted(self.leaf_iter_vars.index(iv) for iv in iter_vars)
        for pos, iv in zip(positions, iter_vars):
            self.leaf_iter_vars[pos] = iv

    def unroll(self, iter_var: IterVar) -> None:
        """Mark ``iter_var`` for full unrolling."""
        self._annotate(iter_var, "unroll")

    def vectorize(self, iter_var: IterVar) -> None:
        """Mark ``iter_var`` for vectorisation (must be the innermost loop)."""
        self._annotate(iter_var, "vectorize")

    def parallel(self, iter_var: IterVar) -> None:
        """Mark ``iter_var`` for parallel execution (single-core runs treat it as serial)."""
        self._annotate(iter_var, "parallel")

    def compute_inline(self) -> None:
        """Inline this stage into its consumers (no intermediate buffer)."""
        if not isinstance(self.op, ComputeOp):
            raise ValueError("only compute stages can be inlined")
        if self.op.reduce_axis:
            raise ValueError(f"cannot inline stage {self.op.name} with a reduction")
        self.inlined = True

    # -- helpers ---------------------------------------------------------
    def _annotate(self, iter_var: IterVar, kind: str) -> None:
        self._check_leaf(iter_var)
        self.annotations[iter_var] = kind

    def _check_leaf(self, iter_var: IterVar) -> None:
        if iter_var not in self.leaf_iter_vars:
            raise ValueError(
                f"{iter_var!r} is not a leaf iteration variable of stage {self.op.name}"
            )

    def axis_decomposition(self) -> Dict[IterVar, List[IterVar]]:
        """Map each original axis to the leaf iteration variables derived from it."""
        origin: Dict[IterVar, IterVar] = {}
        if isinstance(self.op, ComputeOp):
            for axis in self.op.all_iter_vars():
                origin[axis] = axis
        for relation in self.relations:
            if isinstance(relation, SplitRelation):
                parent_origin = origin.get(relation.parent, relation.parent)
                origin[relation.outer] = parent_origin
                origin[relation.inner] = parent_origin
            else:
                # A fused loop mixes two origins; attribute it to the outer one.
                parent_origin = origin.get(relation.outer, relation.outer)
                origin[relation.fused] = parent_origin
        decomposition: Dict[IterVar, List[IterVar]] = {}
        if isinstance(self.op, ComputeOp):
            for axis in self.op.all_iter_vars():
                decomposition[axis] = [
                    leaf for leaf in self.leaf_iter_vars if origin.get(leaf, leaf) is axis
                ]
        return decomposition

    def __repr__(self) -> str:
        return f"Stage({self.op.name}, leaves={[iv.name for iv in self.leaf_iter_vars]})"


class Schedule:
    """A collection of stages, one per operation in a kernel's DAG."""

    def __init__(self, outputs: Sequence[Operation]):
        self.outputs = list(outputs)
        self.ops = collect_ops(self.outputs)
        self.stages: List[Stage] = [op_stage for op_stage in (Stage(op) for op in self.ops)]
        self._stage_map: Dict[int, Stage] = {id(stage.op): stage for stage in self.stages}

    def __getitem__(self, key: Union[Tensor, Operation]) -> Stage:
        op = key.op if isinstance(key, Tensor) else key
        try:
            return self._stage_map[id(op)]
        except KeyError:
            raise KeyError(f"operation {op!r} is not part of this schedule") from None

    def compute_stages(self) -> List[Stage]:
        """Stages backed by compute operations, in producer-before-consumer order."""
        return [s for s in self.stages if isinstance(s.op, ComputeOp)]

    def placeholder_ops(self) -> List[PlaceholderOp]:
        """Placeholder (input) operations of the kernel."""
        return [op for op in self.ops if isinstance(op, PlaceholderOp)]

    def __repr__(self) -> str:
        return f"Schedule({[s.op.name for s in self.stages]})"


def create_schedule(
    outputs: Union[Operation, Tensor, Sequence[Union[Operation, Tensor]]],
) -> Schedule:
    """Create a schedule for one or more output operations (or tensors)."""
    if isinstance(outputs, (Operation, Tensor)):
        outputs = [outputs]
    ops = [o.op if isinstance(o, Tensor) else o for o in outputs]
    return Schedule(ops)

"""Loop-nest intermediate representation produced by lowering.

The IR is a small statement tree: ``For`` loops (with an execution kind),
buffer stores/loads with *flattened* integer indices, conditionals, and
sequences.  The code generator walks this tree to build an abstract
instruction program for a target architecture.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.te.expr import Expr, Var, wrap
from repro.te.tensor import Tensor


class ForKind:
    """Execution kinds a lowered loop can have."""

    SERIAL = "serial"
    UNROLLED = "unrolled"
    VECTORIZED = "vectorized"
    PARALLEL = "parallel"

    ALL = (SERIAL, UNROLLED, VECTORIZED, PARALLEL)


class Stmt:
    """Base class of lowered statements."""


class Seq(Stmt):
    """A sequence of statements executed in order."""

    def __init__(self, stmts: Sequence[Stmt]):
        self.stmts = list(stmts)


class For(Stmt):
    """``for loop_var in range(extent): body`` with an execution kind."""

    def __init__(self, loop_var: Var, extent: int, body: Stmt, kind: str = ForKind.SERIAL):
        if kind not in ForKind.ALL:
            raise ValueError(f"unknown loop kind {kind!r}")
        if extent <= 0:
            raise ValueError(f"loop extent must be positive, got {extent}")
        self.loop_var = loop_var
        self.extent = int(extent)
        self.body = body
        self.kind = kind


class BufferLoad(Expr):
    """Load one element of ``buffer`` at a flattened integer index."""

    _fields = ("index",)

    def __init__(self, buffer: Tensor, index: Expr):
        self.buffer = buffer
        self.index = wrap(index)

    def __repr__(self) -> str:
        return f"{self.buffer.name}[{self.index!r}]"


class BufferStore(Stmt):
    """Store ``value`` into ``buffer`` at a flattened integer index."""

    def __init__(self, buffer: Tensor, index: Expr, value: Expr):
        self.buffer = buffer
        self.index = wrap(index)
        self.value = wrap(value)


class IfThenElse(Stmt):
    """Conditional statement; ``else_body`` may be ``None``."""

    def __init__(self, cond: Expr, then_body: Stmt, else_body: Optional[Stmt] = None):
        self.cond = wrap(cond)
        self.then_body = then_body
        self.else_body = else_body


class Evaluate(Stmt):
    """Evaluate an expression for its side effects (rarely used)."""

    def __init__(self, value: Expr):
        self.value = wrap(value)


class LoweredFunc:
    """The result of lowering: argument buffers, intermediate buffers and a body."""

    def __init__(
        self,
        name: str,
        args: Sequence[Tensor],
        body: Stmt,
        intermediate_buffers: Sequence[Tensor],
    ):
        self.name = name
        self.args = list(args)
        self.body = body
        self.intermediate_buffers = list(intermediate_buffers)

    @property
    def buffers(self) -> List[Tensor]:
        """All buffers referenced by the function (arguments then intermediates)."""
        return list(self.args) + list(self.intermediate_buffers)

    def __repr__(self) -> str:
        return f"LoweredFunc({self.name}, args={[t.name for t in self.args]})"


def stmt_to_string(stmt: Stmt, indent: int = 0) -> str:
    """Pretty-print a statement tree (useful in tests and examples)."""
    pad = "  " * indent
    if isinstance(stmt, Seq):
        return "\n".join(stmt_to_string(s, indent) for s in stmt.stmts)
    if isinstance(stmt, For):
        header = f"{pad}for {stmt.loop_var.name} in range({stmt.extent})"
        if stmt.kind != ForKind.SERIAL:
            header += f"  # {stmt.kind}"
        return header + ":\n" + stmt_to_string(stmt.body, indent + 1)
    if isinstance(stmt, BufferStore):
        return f"{pad}{stmt.buffer.name}[{stmt.index!r}] = {stmt.value!r}"
    if isinstance(stmt, IfThenElse):
        text = f"{pad}if {stmt.cond!r}:\n" + stmt_to_string(stmt.then_body, indent + 1)
        if stmt.else_body is not None:
            text += f"\n{pad}else:\n" + stmt_to_string(stmt.else_body, indent + 1)
        return text
    if isinstance(stmt, Evaluate):
        return f"{pad}evaluate({stmt.value!r})"
    raise TypeError(f"unknown statement type {type(stmt).__name__}")


def walk_statements(stmt: Stmt):
    """Yield every statement in the tree (pre-order)."""
    yield stmt
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            yield from walk_statements(child)
    elif isinstance(stmt, For):
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, IfThenElse):
        yield from walk_statements(stmt.then_body)
        if stmt.else_body is not None:
            yield from walk_statements(stmt.else_body)


def loop_extent_product(stmt: Stmt) -> int:
    """Total number of innermost-body executions, ignoring guards."""
    if isinstance(stmt, For):
        return stmt.extent * loop_extent_product(stmt.body)
    if isinstance(stmt, Seq):
        return sum(loop_extent_product(s) for s in stmt.stmts)
    if isinstance(stmt, IfThenElse):
        total = loop_extent_product(stmt.then_body)
        if stmt.else_body is not None:
            total += loop_extent_product(stmt.else_body)
        return total
    return 1

"""Tensor-expression DSL substrate (TVM TE stand-in).

This package provides the compute/schedule separation the paper's autotuning
flow relies on: a kernel's functional behaviour is described once with
:func:`compute`, and its implementation (loop tiling, ordering, unrolling,
vectorisation) is described by a :class:`Schedule`.  Lowering produces a
loop-nest IR that the code generator turns into an abstract instruction
program for a target architecture.
"""

from repro.te.expr import (
    Expr,
    Var,
    IntImm,
    FloatImm,
    BinaryOp,
    CmpOp,
    LogicalOp,
    NotOp,
    Select,
    TensorRead,
    Reduce,
    const,
    max_expr,
    min_expr,
    substitute,
    post_order_visit,
    affine_form,
)
from repro.te.tensor import (
    IterVar,
    Tensor,
    placeholder,
    compute,
    reduce_axis,
    sum as sum  # noqa: PLC0414 - re-exported under the TVM-style name
)
from repro.te.tensor import sum_reduce, max_reduce
from repro.te.operation import Operation, PlaceholderOp, ComputeOp
from repro.te.schedule import Schedule, Stage, create_schedule
from repro.te.ir import (
    Stmt,
    For,
    Seq,
    BufferStore,
    BufferLoad,
    IfThenElse,
    Evaluate,
    LoweredFunc,
    ForKind,
)
from repro.te.lower import lower
from repro.te import topi

__all__ = [
    "Expr",
    "Var",
    "IntImm",
    "FloatImm",
    "BinaryOp",
    "CmpOp",
    "LogicalOp",
    "NotOp",
    "Select",
    "TensorRead",
    "Reduce",
    "const",
    "max_expr",
    "min_expr",
    "substitute",
    "post_order_visit",
    "affine_form",
    "IterVar",
    "Tensor",
    "placeholder",
    "compute",
    "reduce_axis",
    "sum",
    "sum_reduce",
    "max_reduce",
    "Operation",
    "PlaceholderOp",
    "ComputeOp",
    "Schedule",
    "Stage",
    "create_schedule",
    "Stmt",
    "For",
    "Seq",
    "BufferStore",
    "BufferLoad",
    "IfThenElse",
    "Evaluate",
    "LoweredFunc",
    "ForKind",
    "lower",
    "topi",
]

"""Lowering: turn a schedule plus compute definitions into a loop-nest IR."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.te.expr import (
    BinaryOp,
    CmpOp,
    Expr,
    FloatImm,
    IntImm,
    LogicalOp,
    NotOp,
    Reduce,
    Select,
    TensorRead,
    Var,
    simplify,
    substitute,
    wrap,
)
from repro.te.ir import (
    BufferLoad,
    BufferStore,
    For,
    ForKind,
    IfThenElse,
    LoweredFunc,
    Seq,
    Stmt,
)
from repro.te.operation import ComputeOp, PlaceholderOp
from repro.te.schedule import FuseRelation, Schedule, SplitRelation, Stage
from repro.te.tensor import IterVar, Tensor

_ANNOTATION_TO_KIND = {
    "unroll": ForKind.UNROLLED,
    "vectorize": ForKind.VECTORIZED,
    "parallel": ForKind.PARALLEL,
}


def lower(schedule: Schedule, args: Sequence[Tensor], name: str = "main") -> LoweredFunc:
    """Lower ``schedule`` into a :class:`LoweredFunc`.

    Parameters
    ----------
    schedule:
        The schedule to lower.
    args:
        The function's argument buffers (inputs and outputs) in call order,
        mirroring the DLPack argument list the paper's executables receive.
    name:
        Name of the generated function.
    """
    arg_ids = {id(t) for t in args}
    inline_map: Dict[int, ComputeOp] = {}
    for stage in schedule.compute_stages():
        if stage.inlined:
            if id(stage.op.output_tensor) in arg_ids:
                raise ValueError(
                    f"stage {stage.op.name} produces a function argument and cannot be inlined"
                )
            inline_map[id(stage.op.output_tensor)] = stage.op

    statements: List[Stmt] = []
    intermediates: List[Tensor] = []
    for stage in schedule.compute_stages():
        if stage.inlined:
            continue
        statements.append(_lower_stage(stage, inline_map))
        output = stage.op.output_tensor
        if id(output) not in arg_ids:
            intermediates.append(output)

    for tensor in args:
        if isinstance(tensor.op, ComputeOp):
            stage = schedule[tensor]
            if stage.inlined:
                raise ValueError(f"argument tensor {tensor.name} is inlined")

    body: Stmt = statements[0] if len(statements) == 1 else Seq(statements)
    return LoweredFunc(name=name, args=list(args), body=body, intermediate_buffers=intermediates)


# ---------------------------------------------------------------------------
# stage lowering
# ---------------------------------------------------------------------------


def _lower_stage(stage: Stage, inline_map: Dict[int, ComputeOp]) -> Stmt:
    op = stage.op
    assert isinstance(op, ComputeOp)
    output = op.output_tensor

    value_map = _axis_value_map(stage)
    guard = _guard_condition(stage, value_map)

    axis_subst = {axis.var: value_map[axis] for axis in op.all_iter_vars()}
    out_index = _flatten_index(output, [value_map[axis] for axis in op.axis])

    if op.reduce_axis:
        assert isinstance(op.body, Reduce)
        reduce_expr = op.body
        source = _resolve_expr(substitute(reduce_expr.source, axis_subst), inline_map)
        current = BufferLoad(output, out_index)
        if reduce_expr.kind == "sum":
            update_value: Expr = BinaryOp("add", current, source)
        else:
            update_value = BinaryOp("max", current, source)
        update = BufferStore(output, out_index, update_value)
        body: Stmt = IfThenElse(guard, update) if guard is not None else update
        main_nest = _build_loop_nest(stage, body)
        init_nest = _build_init_nest(op, reduce_expr.init)
        return Seq([init_nest, main_nest])

    value = _resolve_expr(substitute(op.body, axis_subst), inline_map)
    store = BufferStore(output, out_index, value)
    body = IfThenElse(guard, store) if guard is not None else store
    return _build_loop_nest(stage, body)


def _build_loop_nest(stage: Stage, body: Stmt) -> Stmt:
    for leaf in reversed(stage.leaf_iter_vars):
        kind = _ANNOTATION_TO_KIND.get(stage.annotations.get(leaf, ""), ForKind.SERIAL)
        body = For(leaf.var, leaf.extent, body, kind=kind)
    return body


def _build_init_nest(op: ComputeOp, init: Expr) -> Stmt:
    output = op.output_tensor
    index = _flatten_index(output, [axis.var for axis in op.axis])
    body: Stmt = BufferStore(output, index, init)
    for axis in reversed(op.axis):
        body = For(axis.var, axis.extent, body, kind=ForKind.SERIAL)
    return body


# ---------------------------------------------------------------------------
# axis reconstruction and guards
# ---------------------------------------------------------------------------


def _axis_value_map(stage: Stage) -> Dict[IterVar, Expr]:
    """Express each original axis value in terms of the leaf loop variables."""
    values: Dict[IterVar, Expr] = {leaf: leaf.var for leaf in stage.leaf_iter_vars}

    def value_of(iter_var: IterVar) -> Expr:
        return values.get(iter_var, iter_var.var)

    for relation in reversed(stage.relations):
        if isinstance(relation, SplitRelation):
            values[relation.parent] = simplify(
                BinaryOp(
                    "add",
                    BinaryOp("mul", value_of(relation.outer), IntImm(relation.factor)),
                    value_of(relation.inner),
                )
            )
        elif isinstance(relation, FuseRelation):
            fused_value = value_of(relation.fused)
            inner_extent = relation.inner.extent
            values[relation.outer] = simplify(
                BinaryOp("floordiv", fused_value, IntImm(inner_extent))
            )
            values[relation.inner] = simplify(BinaryOp("mod", fused_value, IntImm(inner_extent)))

    if isinstance(stage.op, ComputeOp):
        for axis in stage.op.all_iter_vars():
            values.setdefault(axis, axis.var)
    return values


def _guard_condition(stage: Stage, value_map: Dict[IterVar, Expr]) -> Expr | None:
    """Return a predicate guarding out-of-range iterations, or ``None``."""
    if not isinstance(stage.op, ComputeOp):
        return None
    extents = {leaf.var: leaf.extent for leaf in stage.leaf_iter_vars}
    conditions: List[Expr] = []
    for axis in stage.op.all_iter_vars():
        _, upper = _bounds(value_map[axis], extents)
        if upper >= axis.extent:
            conditions.append(CmpOp("lt", value_map[axis], IntImm(axis.extent)))
    if not conditions:
        return None
    cond = conditions[0]
    for extra in conditions[1:]:
        cond = LogicalOp("and", cond, extra)
    return cond


def _bounds(expr: Expr, extents: Dict[Var, int]) -> Tuple[int, int]:
    """Conservative integer interval of ``expr`` given loop-variable extents."""
    if isinstance(expr, IntImm):
        return expr.value, expr.value
    if isinstance(expr, Var):
        if expr not in extents:
            raise KeyError(f"unknown loop variable {expr.name} in bound analysis")
        return 0, extents[expr] - 1
    if isinstance(expr, BinaryOp):
        alo, ahi = _bounds(expr.a, extents)
        blo, bhi = _bounds(expr.b, extents)
        if expr.op == "add":
            return alo + blo, ahi + bhi
        if expr.op == "sub":
            return alo - bhi, ahi - blo
        if expr.op == "mul":
            candidates = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
            return min(candidates), max(candidates)
        if expr.op in ("div", "floordiv") and blo == bhi and blo > 0:
            return alo // blo, ahi // blo
        if expr.op == "mod" and blo == bhi and blo > 0:
            return 0, blo - 1
        if expr.op == "min":
            return min(alo, blo), min(ahi, bhi)
        if expr.op == "max":
            return max(alo, blo), max(ahi, bhi)
    raise ValueError(f"cannot bound expression {expr!r}")


# ---------------------------------------------------------------------------
# expression resolution (inlining + index flattening)
# ---------------------------------------------------------------------------


def _flatten_index(tensor: Tensor, indices: Sequence[Expr]) -> Expr:
    strides = tensor.strides()
    flat: Expr = IntImm(0)
    for index, stride in zip(indices, strides):
        flat = BinaryOp("add", flat, BinaryOp("mul", wrap(index), IntImm(stride)))
    return simplify(flat)


def _resolve_expr(expr: Expr, inline_map: Dict[int, ComputeOp]) -> Expr:
    """Replace tensor reads with buffer loads, expanding inlined stages."""
    if isinstance(expr, TensorRead):
        indices = [_resolve_expr(i, inline_map) for i in expr.indices]
        producer = inline_map.get(id(expr.tensor))
        if producer is not None:
            mapping = {axis.var: index for axis, index in zip(producer.axis, indices)}
            inlined_body = substitute(producer.body, mapping)
            return _resolve_expr(inlined_body, inline_map)
        if isinstance(expr.tensor.op, (PlaceholderOp, ComputeOp)):
            return BufferLoad(expr.tensor, _flatten_index(expr.tensor, indices))
        raise TypeError(f"cannot lower read of tensor {expr.tensor!r}")
    if isinstance(expr, (IntImm, FloatImm, Var)):
        return expr
    if isinstance(expr, BufferLoad):
        return BufferLoad(expr.buffer, _resolve_expr(expr.index, inline_map))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op, _resolve_expr(expr.a, inline_map), _resolve_expr(expr.b, inline_map)
        )
    if isinstance(expr, CmpOp):
        return CmpOp(expr.op, _resolve_expr(expr.a, inline_map), _resolve_expr(expr.b, inline_map))
    if isinstance(expr, LogicalOp):
        return LogicalOp(
            expr.op, _resolve_expr(expr.a, inline_map), _resolve_expr(expr.b, inline_map)
        )
    if isinstance(expr, NotOp):
        return NotOp(_resolve_expr(expr.a, inline_map))
    if isinstance(expr, Select):
        return Select(
            _resolve_expr(expr.cond, inline_map),
            _resolve_expr(expr.true_value, inline_map),
            _resolve_expr(expr.false_value, inline_map),
        )
    if isinstance(expr, Reduce):
        raise ValueError("nested reductions are not supported")
    raise TypeError(f"cannot resolve expression of type {type(expr).__name__}")

"""Operations that produce tensors: placeholders and compute definitions."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.te.expr import Expr, TensorRead, post_order_visit


class Operation:
    """Base class of tensor-producing operations."""

    name: str

    @property
    def input_tensors(self) -> List:
        """Tensors read by this operation (empty for placeholders)."""
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PlaceholderOp(Operation):
    """An external input buffer; it has no body and no inputs."""

    def __init__(self, name: str, shape: Tuple[int, ...], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype
        self.output_tensor = None


class ComputeOp(Operation):
    """An element-wise (optionally reducing) tensor computation.

    Attributes
    ----------
    axis:
        Spatial iteration variables, one per output dimension.
    reduce_axis:
        Reduction iteration variables (empty for pure element-wise ops).
    body:
        The expression computing one output element; if the op reduces, the
        body is a :class:`~repro.te.expr.Reduce` node.
    """

    def __init__(
        self,
        name: str,
        axis: Sequence,
        reduce_axis: Sequence,
        body: Expr,
        shape: Tuple[int, ...],
        dtype: str,
    ):
        self.name = name
        self.axis = list(axis)
        self.reduce_axis = list(reduce_axis)
        self.body = body
        self.shape = shape
        self.dtype = dtype
        self.output_tensor = None

    @property
    def input_tensors(self) -> List:
        """Distinct tensors read by the body, in first-use order."""
        seen = []

        def visit(node: Expr) -> None:
            if isinstance(node, TensorRead) and node.tensor not in seen:
                seen.append(node.tensor)

        post_order_visit(self.body, visit)
        return seen

    def all_iter_vars(self) -> List:
        """Spatial followed by reduction iteration variables."""
        return list(self.axis) + list(self.reduce_axis)


def collect_ops(output_ops: Sequence[Operation]) -> List[Operation]:
    """Return all operations reachable from ``output_ops`` in topological order.

    Producers appear before consumers, which is the order in which stages must
    be lowered.
    """
    order: List[Operation] = []
    visited = set()

    def visit(op: Operation) -> None:
        if id(op) in visited:
            return
        visited.add(id(op))
        for tensor in op.input_tensors:
            visit(tensor.op)
        order.append(op)

    for op in output_ops:
        visit(op)
    return order

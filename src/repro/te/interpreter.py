"""A reference interpreter for lowered functions.

The interpreter executes the loop-nest IR directly on numpy buffers.  It is
far too slow for the paper's workloads, but it gives the test suite a ground
truth: a schedule transformation is correct exactly when the interpreted
result matches the untransformed computation.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.te.expr import (
    BinaryOp,
    CmpOp,
    Expr,
    FloatImm,
    IntImm,
    LogicalOp,
    NotOp,
    Select,
    Var,
)
from repro.te.ir import BufferLoad, BufferStore, For, IfThenElse, LoweredFunc, Seq, Stmt, Evaluate

_NUMPY_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int32,
    "int64": np.int64,
    "int8": np.int8,
    "uint8": np.uint8,
    "float16": np.float16,
}


def allocate_buffers(func: LoweredFunc) -> Dict[str, np.ndarray]:
    """Allocate flat numpy arrays for the function's intermediate buffers."""
    buffers: Dict[str, np.ndarray] = {}
    for tensor in func.intermediate_buffers:
        buffers[tensor.name] = np.zeros(tensor.size, dtype=_NUMPY_DTYPES[tensor.dtype])
    return buffers


def run(func: LoweredFunc, args: Sequence[np.ndarray]) -> None:
    """Execute ``func`` with ``args`` bound (in order) to its argument buffers.

    Each argument must be a numpy array whose size matches the corresponding
    tensor; output arguments are modified in place.
    """
    if len(args) != len(func.args):
        raise ValueError(f"expected {len(func.args)} arguments, got {len(args)}")
    env: Dict[str, np.ndarray] = {}
    for tensor, array in zip(func.args, args):
        if array.size != tensor.size:
            raise ValueError(
                f"argument {tensor.name} expects {tensor.size} elements, got {array.size}"
            )
        env[tensor.name] = array.reshape(-1)
    for name, array in allocate_buffers(func).items():
        env[name] = array
    _exec_stmt(func.body, env, {})


def _exec_stmt(stmt: Stmt, buffers: Dict[str, np.ndarray], scope: Dict[str, int]) -> None:
    if isinstance(stmt, Seq):
        for child in stmt.stmts:
            _exec_stmt(child, buffers, scope)
    elif isinstance(stmt, For):
        name = stmt.loop_var.name
        for value in range(stmt.extent):
            scope[name] = value
            _exec_stmt(stmt.body, buffers, scope)
        scope.pop(name, None)
    elif isinstance(stmt, IfThenElse):
        if _eval_expr(stmt.cond, buffers, scope):
            _exec_stmt(stmt.then_body, buffers, scope)
        elif stmt.else_body is not None:
            _exec_stmt(stmt.else_body, buffers, scope)
    elif isinstance(stmt, BufferStore):
        index = int(_eval_expr(stmt.index, buffers, scope))
        value = _eval_expr(stmt.value, buffers, scope)
        buffers[stmt.buffer.name][index] = value
    elif isinstance(stmt, Evaluate):
        _eval_expr(stmt.value, buffers, scope)
    else:
        raise TypeError(f"cannot interpret statement {type(stmt).__name__}")


def _eval_expr(expr: Expr, buffers: Dict[str, np.ndarray], scope: Dict[str, int]):
    if isinstance(expr, IntImm):
        return expr.value
    if isinstance(expr, FloatImm):
        return expr.value
    if isinstance(expr, Var):
        return scope[expr.name]
    if isinstance(expr, BufferLoad):
        index = int(_eval_expr(expr.index, buffers, scope))
        return buffers[expr.buffer.name][index]
    if isinstance(expr, BinaryOp):
        a = _eval_expr(expr.a, buffers, scope)
        b = _eval_expr(expr.b, buffers, scope)
        if expr.op == "add":
            return a + b
        if expr.op == "sub":
            return a - b
        if expr.op == "mul":
            return a * b
        if expr.op == "div":
            return a / b
        if expr.op == "floordiv":
            return a // b
        if expr.op == "mod":
            return a % b
        if expr.op == "min":
            return min(a, b)
        if expr.op == "max":
            return max(a, b)
    if isinstance(expr, CmpOp):
        a = _eval_expr(expr.a, buffers, scope)
        b = _eval_expr(expr.b, buffers, scope)
        return {
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
            "eq": a == b,
            "ne": a != b,
        }[expr.op]
    if isinstance(expr, LogicalOp):
        a = _eval_expr(expr.a, buffers, scope)
        if expr.op == "and":
            return bool(a) and bool(_eval_expr(expr.b, buffers, scope))
        return bool(a) or bool(_eval_expr(expr.b, buffers, scope))
    if isinstance(expr, NotOp):
        return not _eval_expr(expr.a, buffers, scope)
    if isinstance(expr, Select):
        if _eval_expr(expr.cond, buffers, scope):
            return _eval_expr(expr.true_value, buffers, scope)
        return _eval_expr(expr.false_value, buffers, scope)
    raise TypeError(f"cannot interpret expression {type(expr).__name__}")

"""Tensors, iteration variables and the ``placeholder``/``compute`` builders."""

from __future__ import annotations

import itertools
from typing import Callable, List, Sequence, Tuple, Union

from repro.te.expr import Expr, ExprOps, Reduce, TensorRead, Var, wrap

_name_counter = itertools.count()

#: Bytes per element for the supported dtypes.
DTYPE_BYTES = {
    "float32": 4,
    "float64": 8,
    "int32": 4,
    "int64": 8,
    "int8": 1,
    "uint8": 1,
    "float16": 2,
}


def _fresh_name(prefix: str) -> str:
    return f"{prefix}_{next(_name_counter)}"


class IterVar(ExprOps):
    """An iteration variable with an extent and a kind.

    ``kind`` is ``"spatial"`` for data-parallel axes and ``"reduce"`` for
    reduction axes.  IterVars behave like their underlying :class:`Var` in
    arithmetic, so compute bodies can use them directly as indices.
    """

    SPATIAL = "spatial"
    REDUCE = "reduce"

    def __init__(self, extent: int, name: str, kind: str = SPATIAL):
        if kind not in (self.SPATIAL, self.REDUCE):
            raise ValueError(f"unknown IterVar kind {kind!r}")
        if extent <= 0:
            raise ValueError(f"IterVar extent must be positive, got {extent}")
        self.extent = int(extent)
        self.name = name
        self.kind = kind
        self.var = Var(name)

    def _as_expr(self) -> Expr:
        return self.var

    def __repr__(self) -> str:
        return f"IterVar({self.name}, extent={self.extent}, kind={self.kind})"


class Tensor(ExprOps):
    """A multi-dimensional value produced by an operation.

    Tensors are symbolic: they carry a shape, a dtype and the operation that
    produces them, but no data.  Indexing a tensor yields a
    :class:`~repro.te.expr.TensorRead` expression.
    """

    def __init__(self, op, shape: Sequence[int], dtype: str, name: str):
        if dtype not in DTYPE_BYTES:
            raise ValueError(f"unsupported dtype {dtype!r}")
        if any(int(dim) <= 0 for dim in shape):
            raise ValueError(f"tensor shape must be positive, got {tuple(shape)}")
        self.op = op
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = dtype
        self.name = name

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        size = 1
        for dim in self.shape:
            size *= dim
        return size

    @property
    def dtype_bytes(self) -> int:
        """Size of one element in bytes."""
        return DTYPE_BYTES[self.dtype]

    @property
    def nbytes(self) -> int:
        """Total size of the tensor in bytes."""
        return self.size * self.dtype_bytes

    def strides(self) -> Tuple[int, ...]:
        """Row-major strides in elements."""
        strides = [1] * len(self.shape)
        for i in range(len(self.shape) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.shape[i + 1]
        return tuple(strides)

    def __getitem__(self, indices) -> TensorRead:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != len(self.shape):
            raise ValueError(
                f"tensor {self.name} has {len(self.shape)} dimensions, "
                f"got {len(indices)} indices"
            )
        return TensorRead(self, [wrap(i) for i in indices])

    def _as_expr(self) -> Expr:
        if self.shape != (1,) and self.shape != ():
            raise TypeError(
                f"tensor {self.name} with shape {self.shape} cannot be used as a scalar"
            )
        return TensorRead(self, [wrap(0)])

    def __repr__(self) -> str:
        return f"Tensor({self.name}, shape={self.shape}, dtype={self.dtype})"

    __hash__ = object.__hash__


def placeholder(shape: Sequence[int], dtype: str = "float32", name: str | None = None) -> Tensor:
    """Create an input tensor (an external buffer filled by the caller)."""
    from repro.te.operation import PlaceholderOp

    name = name or _fresh_name("placeholder")
    op = PlaceholderOp(name=name, shape=tuple(int(d) for d in shape), dtype=dtype)
    tensor = Tensor(op, shape, dtype, name)
    op.output_tensor = tensor
    return tensor


def compute(
    shape: Sequence[int],
    fcompute: Callable[..., Union[Expr, ExprOps, float, int]],
    name: str | None = None,
    dtype: str = "float32",
) -> Tensor:
    """Create a tensor defined element-wise by ``fcompute``.

    ``fcompute`` receives one :class:`IterVar` per output dimension and returns
    the expression for that element, exactly like ``te.compute`` in TVM.
    """
    from repro.te.operation import ComputeOp

    name = name or _fresh_name("compute")
    shape = tuple(int(dim) for dim in shape)
    axis_names = "ijklmnop"
    axes = [
        IterVar(extent, f"{name}.{axis_names[d] if d < len(axis_names) else 'ax' + str(d)}")
        for d, extent in enumerate(shape)
    ]
    body = wrap(fcompute(*axes))

    reduce_axes: List[IterVar] = []
    if isinstance(body, Reduce):
        reduce_axes = list(body.axes)

    op = ComputeOp(
        name=name, axis=axes, reduce_axis=reduce_axes, body=body, shape=shape, dtype=dtype
    )
    tensor = Tensor(op, shape, dtype, name)
    op.output_tensor = tensor
    return tensor


def reduce_axis(dom: Tuple[int, int], name: str | None = None) -> IterVar:
    """Create a reduction axis over ``[dom[0], dom[1])``.

    Only zero-based domains are supported, matching how the paper's kernels
    are written (``te.reduce_axis((0, L))``).
    """
    lo, hi = dom
    if lo != 0:
        raise ValueError("reduce_axis domains must start at 0")
    return IterVar(hi, name or _fresh_name("r"), kind=IterVar.REDUCE)


def sum_reduce(source: Union[Expr, ExprOps], axis) -> Reduce:
    """Sum reduction of ``source`` over ``axis`` (an IterVar or list of them)."""
    axes = axis if isinstance(axis, (list, tuple)) else [axis]
    for ax in axes:
        if not isinstance(ax, IterVar) or ax.kind != IterVar.REDUCE:
            raise ValueError("sum axis must be created with reduce_axis()")
    return Reduce("sum", wrap(source), axes, wrap(0.0))


def max_reduce(source: Union[Expr, ExprOps], axis) -> Reduce:
    """Max reduction of ``source`` over ``axis`` (an IterVar or list of them)."""
    axes = axis if isinstance(axis, (list, tuple)) else [axis]
    for ax in axes:
        if not isinstance(ax, IterVar) or ax.kind != IterVar.REDUCE:
            raise ValueError("max axis must be created with reduce_axis()")
    return Reduce("max", wrap(source), axes, wrap(-3.4e38))


#: TVM-style alias: ``te.sum(expr, axis=k)``.
sum = sum_reduce

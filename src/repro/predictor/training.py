"""Score-predictor training and inference (Sections III-C to III-E).

One :class:`ScorePredictor` is trained per target architecture and kernel
type.  Its training data are paired records — simulator statistics and the
measured reference run time — for many implementations of several groups.
Features and targets are normalised per group (Equation 2); at inference time
the group means are either known, or approximated with a static/dynamic
window when the group was never seen (Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.predictor.bayes_opt import BayesianGPModel
from repro.predictor.dnn import DNNRegressor
from repro.predictor.features import (
    DynamicWindow,
    FeatureExtractor,
    GroupStatistics,
    StaticWindow,
)
from repro.predictor.linear import LinearRegressionModel
from repro.predictor.xgboost import GradientBoostedTrees
from repro.utils.rng import new_generator

#: The predictor families compared in the paper (Tables III-V).
PREDICTOR_NAMES = ("linreg", "dnn", "bayes", "xgboost")


def make_model(name: str, seed: int = 0, **overrides):
    """Create one of the paper's predictor models with its tuned configuration.

    The configurations follow Section IV-C: linear regression with RSS loss; a
    (128, 128, 64, 32, 16, 1) tanh DNN with MAE loss and Adam; a Gaussian
    process tuned by Bayesian optimisation with MSE loss; and XGBoost with
    column subsample 0.6, learning rate 0.05, depth 3, alpha 0, lambda 0.1,
    300 trees, minimum child weight 1 and row subsample 0.8.
    """
    key = name.strip().lower()
    if key in ("linreg", "linear", "mlr"):
        return LinearRegressionModel(loss=overrides.pop("loss", "rss"), **overrides)
    if key == "dnn":
        defaults = dict(
            hidden_layers=(128, 128, 64, 32, 16),
            activation="tanh",
            loss="mae",
            learning_rate=1e-3,
            epochs=150,
            random_state=seed,
        )
        defaults.update(overrides)
        return DNNRegressor(**defaults)
    if key in ("bayes", "bayesian", "gp"):
        defaults = dict(loss="mse", random_state=seed)
        defaults.update(overrides)
        return BayesianGPModel(**defaults)
    if key in ("xgboost", "xgb", "gbt"):
        defaults = dict(
            colsample_bytree=0.6,
            learning_rate=0.05,
            max_depth=3,
            reg_alpha=0.0,
            reg_lambda=0.1,
            n_estimators=300,
            min_child_weight=1.0,
            subsample=0.8,
            loss="mse",
            random_state=seed,
        )
        defaults.update(overrides)
        return GradientBoostedTrees(**defaults)
    raise KeyError(f"unknown predictor {name!r}; available: {PREDICTOR_NAMES}")


@dataclass
class TrainingSample:
    """One implementation: its simulator statistics and its reference run time."""

    group_id: int
    flat_stats: Dict[str, float]
    measured_time_s: float
    implementation_id: str = ""

    def __post_init__(self) -> None:
        if self.measured_time_s <= 0:
            raise ValueError("measured_time_s must be positive")


@dataclass
class PredictorDataset:
    """A collection of training samples grouped by kernel group."""

    samples: List[TrainingSample] = field(default_factory=list)
    arch: str = ""
    kernel_type: str = ""

    def add(self, sample: TrainingSample) -> None:
        """Append one sample."""
        self.samples.append(sample)

    def extend(self, samples: Iterable[TrainingSample]) -> None:
        """Append many samples."""
        self.samples.extend(samples)

    def group_ids(self) -> List[int]:
        """Sorted group identifiers present in the dataset."""
        return sorted({sample.group_id for sample in self.samples})

    def group(self, group_id: int) -> List[TrainingSample]:
        """All samples of one group."""
        return [sample for sample in self.samples if sample.group_id == group_id]

    def exclude_groups(self, group_ids: Sequence[int]) -> "PredictorDataset":
        """Dataset without the listed groups (used for the Figure 5 experiment)."""
        excluded = set(group_ids)
        return PredictorDataset(
            samples=[s for s in self.samples if s.group_id not in excluded],
            arch=self.arch,
            kernel_type=self.kernel_type,
        )

    def only_groups(self, group_ids: Sequence[int]) -> "PredictorDataset":
        """Dataset restricted to the listed groups."""
        included = set(group_ids)
        return PredictorDataset(
            samples=[s for s in self.samples if s.group_id in included],
            arch=self.arch,
            kernel_type=self.kernel_type,
        )

    def train_test_split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> Tuple["PredictorDataset", "PredictorDataset"]:
        """Random split keeping ``test_fraction`` of every group for testing."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        rng = new_generator(seed, "dataset_split", self.arch, self.kernel_type)
        train = PredictorDataset(arch=self.arch, kernel_type=self.kernel_type)
        test = PredictorDataset(arch=self.arch, kernel_type=self.kernel_type)
        for group_id in self.group_ids():
            group_samples = self.group(group_id)
            n_test = max(1, int(round(len(group_samples) * test_fraction)))
            order = rng.permutation(len(group_samples))
            test_indices = set(order[:n_test].tolist())
            for index, sample in enumerate(group_samples):
                (test if index in test_indices else train).add(sample)
        return train, test

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (
            f"PredictorDataset(arch={self.arch!r}, kernel={self.kernel_type!r}, "
            f"groups={self.group_ids()}, samples={len(self.samples)})"
        )


class ScorePredictor:
    """A trained score predictor for one architecture and kernel type."""

    def __init__(
        self,
        model_name: str = "xgboost",
        model=None,
        extractor: Optional[FeatureExtractor] = None,
        seed: int = 0,
    ):
        self.model_name = model_name
        self.model = model if model is not None else make_model(model_name, seed=seed)
        self.extractor = extractor or FeatureExtractor()
        self.seed = seed
        self.group_statistics: Dict[int, GroupStatistics] = {}
        self.fitted = False

    # -- training (Figure 4-I) ---------------------------------------------
    def fit(self, dataset: PredictorDataset) -> "ScorePredictor":
        """Train on paired (simulator statistics, measured run time) records."""
        if not dataset.samples:
            raise ValueError("cannot train on an empty dataset")
        self.group_statistics = {}
        features: List[np.ndarray] = []
        targets: List[float] = []
        for group_id in dataset.group_ids():
            group_samples = dataset.group(group_id)
            # Featurize each sample exactly once: the raw features feed both
            # the group means and the final vectors.
            raw = [self.extractor.raw_features(s.flat_stats) for s in group_samples]
            stats = GroupStatistics(
                feature_means=self.extractor.group_means_from_raw(raw),
                time_mean=float(np.mean([s.measured_time_s for s in group_samples])),
            )
            self.group_statistics[group_id] = stats
            for sample_raw, sample in zip(raw, group_samples):
                features.append(self.extractor.vector_from_raw(sample_raw, stats.feature_means))
                targets.append(stats.normalize_time(sample.measured_time_s))
        self.model.fit(np.asarray(features), np.asarray(targets))
        self.fitted = True
        return self

    # -- inference (Figure 4-II) -----------------------------------------------
    def predict_with_means(
        self,
        flat_stats: Mapping[str, float],
        group_means: Mapping[str, float],
        digest: Optional[str] = None,
    ) -> float:
        """Score one implementation given (estimated) group feature means.

        ``digest`` (the result's ``sim_digest``) routes featurization through
        the shared feature cache, so scoring a memoized or deduplicated
        candidate never re-extracts its features.
        """
        if not self.fitted:
            raise RuntimeError("the predictor has not been trained")
        vector = self.extractor.vector(flat_stats, group_means, digest=digest)
        return float(self.model.predict(vector[None, :])[0])

    def predict_dataset(
        self,
        samples: Sequence[TrainingSample],
        window: str = "exact",
        window_size: int = 64,
    ) -> np.ndarray:
        """Scores for a batch of implementations of *one* group.

        ``window`` selects how the group means are obtained:

        * ``"exact"``     — from all provided samples (training-time behaviour);
        * ``"known"``     — from the statistics stored during training
          (requires the group to have been trained on);
        * ``"static"``    — from the first ``window_size`` samples (Section III-E);
        * ``"dynamic"``   — running means updated sample by sample.
        """
        if not samples:
            return np.zeros(0)
        group_ids = {sample.group_id for sample in samples}
        if len(group_ids) != 1:
            raise ValueError("predict_dataset expects samples of a single group")
        group_id = group_ids.pop()

        if window == "known":
            if group_id not in self.group_statistics:
                raise KeyError(f"group {group_id} was not part of the training data")
            means = self.group_statistics[group_id].feature_means
            return np.asarray(
                [self.predict_with_means(s.flat_stats, means) for s in samples]
            )
        if window == "exact":
            means = self.extractor.group_means([s.flat_stats for s in samples])
            return np.asarray(
                [self.predict_with_means(s.flat_stats, means) for s in samples]
            )
        if window == "static":
            estimator = StaticWindow(self.extractor, window_size=window_size)
        elif window == "dynamic":
            estimator = DynamicWindow(self.extractor)
        else:
            raise ValueError(f"unknown window mode {window!r}")

        scores = []
        for sample in samples:
            estimator.observe(sample.flat_stats)
            scores.append(self.predict_with_means(sample.flat_stats, estimator.means()))
        return np.asarray(scores)

    # -- integration with the simulator runner -----------------------------------
    def score_function(self, window: str = "dynamic", window_size: int = 64):
        """A per-batch score function suitable for :class:`SimulatorRunner`.

        The returned callable keeps a window estimator across calls, mirroring
        the batch-wise generation of the Auto-Scheduler (Section III-E).
        """
        if window == "static":
            estimator = StaticWindow(self.extractor, window_size=window_size)
        else:
            estimator = DynamicWindow(self.extractor)

        def score(simulation_result, measure_input) -> float:
            flat_stats = simulation_result.flat_stats()
            digest = getattr(simulation_result, "sim_digest", "") or None
            estimator.observe(flat_stats, digest=digest)
            return self.predict_with_means(flat_stats, estimator.means(), digest=digest)

        return score

    def __repr__(self) -> str:
        return (
            f"ScorePredictor(model={self.model_name}, "
            f"trained_groups={sorted(self.group_statistics)})"
        )

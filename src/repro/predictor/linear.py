"""Multiple linear regression (Section III-D.1)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class LinearRegressionModel:
    """Ordinary least squares (RSS loss) with optional ridge regularisation.

    The model is ``y = b0 + b1*x1 + ... + bn*xn`` (Equation 3).  A tiny ridge
    term keeps the normal equations well conditioned when features are
    collinear (which group-normalised copies of ratios often are).
    """

    def __init__(self, ridge: float = 1e-8, loss: str = "rss"):
        if loss not in ("rss", "mse"):
            raise ValueError("linear regression supports the rss/mse losses only")
        self.ridge = ridge
        self.loss = loss
        self.coefficients_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0
        self.n_features_: int = 0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "LinearRegressionModel":
        """Fit the model; returns ``self``."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on the number of samples")
        self.n_features_ = features.shape[1]
        design = np.hstack([np.ones((features.shape[0], 1)), features])
        gram = design.T @ design
        gram += self.ridge * np.eye(gram.shape[0])
        solution = np.linalg.solve(gram, design.T @ targets)
        self.intercept_ = float(solution[0])
        self.coefficients_ = solution[1:]
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features``."""
        if self.coefficients_ is None:
            raise RuntimeError("the model has not been fitted")
        features = np.asarray(features, dtype=float)
        return features @ self.coefficients_ + self.intercept_

    def __repr__(self) -> str:
        return f"LinearRegressionModel(n_features={self.n_features_}, loss={self.loss})"

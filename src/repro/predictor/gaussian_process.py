"""Gaussian-process regression with the paper's kernel (Listing 6).

The kernel is ``ConstantKernel(C) * RBF(length_scale) + WhiteKernel(noise)``;
its three hyper-parameters are tuned by Bayesian optimisation in
:mod:`repro.predictor.bayes_opt`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Kernel:
    """Base class of covariance functions."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def diagonal_noise(self) -> float:
        """Extra variance added to the diagonal of the training covariance."""
        return 0.0

    def __mul__(self, other: "Kernel") -> "Kernel":
        return ProductKernel(self, other)

    def __add__(self, other: "Kernel") -> "Kernel":
        return SumKernel(self, other)


class ConstantKernel(Kernel):
    """A constant scaling factor."""

    def __init__(self, constant_value: float = 1.0):
        if constant_value <= 0:
            raise ValueError("constant_value must be positive")
        self.constant_value = float(constant_value)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.full((a.shape[0], b.shape[0]), self.constant_value)


class RBF(Kernel):
    """Squared-exponential kernel with an isotropic length scale."""

    def __init__(self, length_scale: float = 1.0):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        self.length_scale = float(length_scale)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_scaled = a / self.length_scale
        b_scaled = b / self.length_scale
        squared_distance = (
            np.sum(a_scaled**2, axis=1)[:, None]
            + np.sum(b_scaled**2, axis=1)[None, :]
            - 2.0 * a_scaled @ b_scaled.T
        )
        return np.exp(-0.5 * np.maximum(squared_distance, 0.0))


class WhiteKernel(Kernel):
    """Observation noise: contributes only to the training covariance diagonal."""

    def __init__(self, noise_level: float = 1e-5):
        if noise_level < 0:
            raise ValueError("noise_level cannot be negative")
        self.noise_level = float(noise_level)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.zeros((a.shape[0], b.shape[0]))

    def diagonal_noise(self) -> float:
        return self.noise_level


class ProductKernel(Kernel):
    """Pointwise product of two kernels."""

    def __init__(self, left: Kernel, right: Kernel):
        self.left = left
        self.right = right

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.left(a, b) * self.right(a, b)

    def diagonal_noise(self) -> float:
        # Noise kernels are not meaningful inside products; ignore them there.
        return 0.0


class SumKernel(Kernel):
    """Pointwise sum of two kernels."""

    def __init__(self, left: Kernel, right: Kernel):
        self.left = left
        self.right = right

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.left(a, b) + self.right(a, b)

    def diagonal_noise(self) -> float:
        return self.left.diagonal_noise() + self.right.diagonal_noise()


class GaussianProcessRegressor:
    """Exact GP regression with a fixed kernel."""

    def __init__(self, kernel: Kernel, jitter: float = 1e-8, normalize_y: bool = True):
        self.kernel = kernel
        self.jitter = jitter
        self.normalize_y = normalize_y
        self._train_x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.n_features_: int = 0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GaussianProcessRegressor":
        """Fit the GP posterior; returns ``self``."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        self.n_features_ = features.shape[1]
        self._train_x = features
        if self.normalize_y:
            self._y_mean = float(targets.mean())
            self._y_std = float(targets.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        scaled_targets = (targets - self._y_mean) / self._y_std

        covariance = self.kernel(features, features)
        diagonal = self.kernel.diagonal_noise() + self.jitter
        covariance[np.diag_indices_from(covariance)] += diagonal
        self._chol = np.linalg.cholesky(covariance)
        self._alpha = np.linalg.solve(
            self._chol.T, np.linalg.solve(self._chol, scaled_targets)
        )
        return self

    def predict(self, features: np.ndarray, return_std: bool = False):
        """Posterior mean (and optionally standard deviation) at ``features``."""
        if self._train_x is None or self._alpha is None or self._chol is None:
            raise RuntimeError("the model has not been fitted")
        features = np.asarray(features, dtype=float)
        cross = self.kernel(features, self._train_x)
        mean = cross @ self._alpha * self._y_std + self._y_mean
        if not return_std:
            return mean
        v = np.linalg.solve(self._chol, cross.T)
        prior = np.diag(self.kernel(features, features)) + self.kernel.diagonal_noise()
        variance = np.maximum(prior - np.sum(v**2, axis=0), 1e-12)
        return mean, np.sqrt(variance) * self._y_std

    def __repr__(self) -> str:
        return f"GaussianProcessRegressor(kernel={type(self.kernel).__name__})"

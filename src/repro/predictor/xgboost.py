"""Gradient-boosted regression trees (Section III-D.4), XGBoost style.

Trees are fitted sequentially on the gradient/hessian statistics of the loss;
splits maximise the regularised gain and leaf weights include L1/L2
regularisation, mirroring XGBoost's objective.  The hyper-parameters exposed
are the ones the paper tunes by grid search: learning rate, maximum depth,
number of trees, row/column subsampling, ``alpha``/``lambda`` regularisation
and the minimum child weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _TreeNode:
    """A node of one regression tree."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _RegressionTree:
    """A single depth-limited regression tree on gradient statistics."""

    def __init__(
        self,
        max_depth: int,
        min_child_weight: float,
        reg_lambda: float,
        reg_alpha: float,
        gamma: float,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.reg_alpha = reg_alpha
        self.gamma = gamma
        self.root: Optional[_TreeNode] = None

    # -- XGBoost leaf weight / gain ----------------------------------------
    def _leaf_weight(self, grad_sum: float, hess_sum: float) -> float:
        if grad_sum > self.reg_alpha:
            numerator = grad_sum - self.reg_alpha
        elif grad_sum < -self.reg_alpha:
            numerator = grad_sum + self.reg_alpha
        else:
            return 0.0
        return -numerator / (hess_sum + self.reg_lambda)

    def _score(self, grad_sum: float, hess_sum: float) -> float:
        weight = self._leaf_weight(grad_sum, hess_sum)
        return -(grad_sum * weight + 0.5 * (hess_sum + self.reg_lambda) * weight**2)

    def _score_vector(self, grad_sums: np.ndarray, hess_sums: np.ndarray) -> np.ndarray:
        """Vectorised node score for arrays of gradient/hessian sums."""
        numerator = np.where(
            grad_sums > self.reg_alpha,
            grad_sums - self.reg_alpha,
            np.where(grad_sums < -self.reg_alpha, grad_sums + self.reg_alpha, 0.0),
        )
        weights = -numerator / (hess_sums + self.reg_lambda)
        return -(grad_sums * weights + 0.5 * (hess_sums + self.reg_lambda) * weights**2)

    # -- construction -----------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: np.ndarray,
    ) -> "_RegressionTree":
        self.root = self._build(features, gradients, hessians, feature_indices, depth=0)
        return self

    def _build(
        self,
        features: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: np.ndarray,
        depth: int,
    ) -> _TreeNode:
        grad_sum = float(gradients.sum())
        hess_sum = float(hessians.sum())
        node = _TreeNode(value=self._leaf_weight(grad_sum, hess_sum))
        if depth >= self.max_depth or features.shape[0] < 2 or hess_sum < 2 * self.min_child_weight:
            return node

        parent_score = self._score(grad_sum, hess_sum)
        best_gain = 0.0
        best_feature = -1
        best_threshold = 0.0

        for feature in feature_indices:
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            grad_cumulative = np.cumsum(gradients[order])[:-1]
            hess_cumulative = np.cumsum(hessians[order])[:-1]
            right_grad = grad_sum - grad_cumulative
            right_hess = hess_sum - hess_cumulative
            valid = (
                (np.diff(sorted_values) > 1e-12)
                & (hess_cumulative >= self.min_child_weight)
                & (right_hess >= self.min_child_weight)
            )
            if not valid.any():
                continue
            gains = (
                self._score_vector(grad_cumulative, hess_cumulative)
                + self._score_vector(right_grad, right_hess)
                - parent_score
                - self.gamma
            )
            gains = np.where(valid, gains, -np.inf)
            position = int(np.argmax(gains))
            if gains[position] > best_gain:
                best_gain = float(gains[position])
                best_feature = int(feature)
                best_threshold = float(
                    0.5 * (sorted_values[position] + sorted_values[position + 1])
                )

        if best_feature < 0:
            return node

        mask = features[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._build(
            features[mask], gradients[mask], hessians[mask], feature_indices, depth + 1
        )
        node.right = self._build(
            features[~mask], gradients[~mask], hessians[~mask], feature_indices, depth + 1
        )
        return node

    # -- inference ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.root is None:
            raise RuntimeError("the tree has not been fitted")
        output = np.zeros(features.shape[0])
        self._predict_into(self.root, features, np.arange(features.shape[0]), output)
        return output

    def _predict_into(
        self, node: _TreeNode, features: np.ndarray, rows: np.ndarray, output: np.ndarray
    ) -> None:
        if node.is_leaf or rows.size == 0:
            output[rows] = node.value
            return
        mask = features[rows, node.feature] <= node.threshold
        self._predict_into(node.left, features, rows[mask], output)
        self._predict_into(node.right, features, rows[~mask], output)


class GradientBoostedTrees:
    """XGBoost-style gradient boosting for regression (squared-error loss)."""

    def __init__(
        self,
        n_estimators: int = 300,
        learning_rate: float = 0.05,
        max_depth: int = 3,
        subsample: float = 0.8,
        colsample_bytree: float = 0.6,
        reg_alpha: float = 0.0,
        reg_lambda: float = 0.1,
        min_child_weight: float = 1.0,
        gamma: float = 0.0,
        loss: str = "mse",
        random_state: int = 0,
    ):
        if loss != "mse":
            raise ValueError("gradient boosting is implemented for the mse loss")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.reg_alpha = reg_alpha
        self.reg_lambda = reg_lambda
        self.min_child_weight = min_child_weight
        self.gamma = gamma
        self.loss = loss
        self.random_state = random_state
        self._trees: List[_RegressionTree] = []
        self._base_prediction = 0.0
        self.n_features_: int = 0

    def get_params(self) -> dict:
        """Hyper-parameters as a dictionary (used by grid search)."""
        return {
            "n_estimators": self.n_estimators,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "subsample": self.subsample,
            "colsample_bytree": self.colsample_bytree,
            "reg_alpha": self.reg_alpha,
            "reg_lambda": self.reg_lambda,
            "min_child_weight": self.min_child_weight,
            "gamma": self.gamma,
            "loss": self.loss,
            "random_state": self.random_state,
        }

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the boosted ensemble; returns ``self``."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        rng = np.random.default_rng(self.random_state)
        n_samples, n_features = features.shape
        self.n_features_ = n_features
        self._trees = []
        self._base_prediction = float(targets.mean())
        predictions = np.full(n_samples, self._base_prediction)

        n_columns = max(1, int(round(self.colsample_bytree * n_features)))
        n_rows = max(2, int(round(self.subsample * n_samples)))

        for _ in range(self.n_estimators):
            gradients = predictions - targets  # d/dpred of 0.5*(pred-y)^2
            hessians = np.ones(n_samples)
            rows = (
                rng.choice(n_samples, size=n_rows, replace=False)
                if n_rows < n_samples
                else np.arange(n_samples)
            )
            columns = (
                rng.choice(n_features, size=n_columns, replace=False)
                if n_columns < n_features
                else np.arange(n_features)
            )
            tree = _RegressionTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                reg_alpha=self.reg_alpha,
                gamma=self.gamma,
            ).fit(features[rows], gradients[rows], hessians[rows], columns)
            self._trees.append(tree)
            predictions += self.learning_rate * tree.predict(features)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features``."""
        if not self._trees:
            raise RuntimeError("the model has not been fitted")
        features = np.asarray(features, dtype=float)
        predictions = np.full(features.shape[0], self._base_prediction)
        for tree in self._trees:
            predictions += self.learning_rate * tree.predict(features)
        return predictions

    def __repr__(self) -> str:
        return (
            f"GradientBoostedTrees(n_estimators={self.n_estimators}, max_depth={self.max_depth}, "
            f"learning_rate={self.learning_rate})"
        )

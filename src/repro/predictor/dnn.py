"""Fully-connected regression network (Section III-D.2), implemented with numpy.

The paper's tuned configuration is six dense layers (128, 128, 64, 32, 16, 1)
with tanh hidden activations, a linear output, MAE loss and the Adam
optimiser; those are the defaults here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _activation(name: str):
    if name == "tanh":
        return np.tanh, lambda activated: 1.0 - activated**2
    if name == "relu":
        return (
            lambda value: np.maximum(value, 0.0),
            lambda activated: (activated > 0.0).astype(activated.dtype),
        )
    if name == "linear":
        return lambda value: value, lambda activated: np.ones_like(activated)
    raise ValueError(f"unknown activation {name!r}")


class DNNRegressor:
    """A small multilayer perceptron for scalar regression."""

    def __init__(
        self,
        hidden_layers: Sequence[int] = (128, 128, 64, 32, 16),
        activation: str = "tanh",
        loss: str = "mae",
        learning_rate: float = 1e-3,
        batch_size: int = 32,
        epochs: int = 200,
        patience: int = 30,
        validation_fraction: float = 0.15,
        random_state: int = 0,
    ):
        if loss not in ("mae", "mse"):
            raise ValueError("DNN regression supports mae or mse loss")
        self.hidden_layers = tuple(hidden_layers)
        self.activation = activation
        self.loss = loss
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.epochs = epochs
        self.patience = patience
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self._weights: List[np.ndarray] = []
        self._biases: List[np.ndarray] = []
        self._input_mean: Optional[np.ndarray] = None
        self._input_std: Optional[np.ndarray] = None
        self.n_features_: int = 0
        self.history_: List[float] = []

    # -- training -----------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DNNRegressor":
        """Train with mini-batch Adam and early stopping on a validation split."""
        rng = np.random.default_rng(self.random_state)
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        self.n_features_ = features.shape[1]

        self._input_mean = features.mean(axis=0)
        self._input_std = features.std(axis=0)
        self._input_std[self._input_std < 1e-12] = 1.0
        normalized = (features - self._input_mean) / self._input_std

        n_samples = normalized.shape[0]
        n_validation = max(1, int(n_samples * self.validation_fraction)) if n_samples > 10 else 0
        permutation = rng.permutation(n_samples)
        validation_idx = permutation[:n_validation]
        train_idx = permutation[n_validation:]
        train_x, train_y = normalized[train_idx], targets[train_idx]
        val_x, val_y = normalized[validation_idx], targets[validation_idx]

        layer_sizes = [self.n_features_, *self.hidden_layers, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self._weights.append(rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self._biases.append(np.zeros(fan_out))

        adam_m = ([np.zeros_like(w) for w in self._weights]
                  + [np.zeros_like(b) for b in self._biases])
        adam_v = ([np.zeros_like(w) for w in self._weights]
                  + [np.zeros_like(b) for b in self._biases])
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8
        step = 0

        best_val = np.inf
        best_params: Optional[Tuple[List[np.ndarray], List[np.ndarray]]] = None
        epochs_without_improvement = 0
        self.history_ = []

        for _ in range(self.epochs):
            order = rng.permutation(train_x.shape[0])
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                step += 1
                gradients = self._gradients(train_x[batch], train_y[batch])
                parameters = self._weights + self._biases
                for i, (param, grad) in enumerate(zip(parameters, gradients)):
                    adam_m[i] = beta1 * adam_m[i] + (1 - beta1) * grad
                    adam_v[i] = beta2 * adam_v[i] + (1 - beta2) * grad**2
                    m_hat = adam_m[i] / (1 - beta1**step)
                    v_hat = adam_v[i] / (1 - beta2**step)
                    param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)

            if n_validation:
                val_loss = self._loss_value(self._forward(val_x)[-1], val_y)
            else:
                val_loss = self._loss_value(self._forward(train_x)[-1], train_y)
            self.history_.append(val_loss)
            if val_loss < best_val - 1e-7:
                best_val = val_loss
                best_params = (
                    [w.copy() for w in self._weights],
                    [b.copy() for b in self._biases],
                )
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break
        if best_params is not None:
            self._weights, self._biases = best_params
        return self

    # -- inference -----------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features``."""
        if not self._weights:
            raise RuntimeError("the model has not been fitted")
        features = np.asarray(features, dtype=float)
        normalized = (features - self._input_mean) / self._input_std
        return self._forward(normalized)[-1].reshape(-1)

    # -- internals --------------------------------------------------------------
    def _forward(self, inputs: np.ndarray) -> List[np.ndarray]:
        activate, _ = _activation(self.activation)
        activations = [inputs]
        current = inputs
        for layer, (weights, bias) in enumerate(zip(self._weights, self._biases)):
            current = current @ weights + bias
            if layer < len(self._weights) - 1:
                current = activate(current)
            activations.append(current)
        return activations

    def _loss_value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        if self.loss == "mae":
            return float(np.mean(np.abs(predictions - targets)))
        return float(np.mean((predictions - targets) ** 2))

    def _gradients(self, inputs: np.ndarray, targets: np.ndarray) -> List[np.ndarray]:
        _, activation_grad = _activation(self.activation)
        activations = self._forward(inputs)
        predictions = activations[-1]
        batch = inputs.shape[0]
        if self.loss == "mae":
            delta = np.sign(predictions - targets) / batch
        else:
            delta = 2.0 * (predictions - targets) / batch

        weight_grads: List[np.ndarray] = [np.zeros_like(w) for w in self._weights]
        bias_grads: List[np.ndarray] = [np.zeros_like(b) for b in self._biases]
        for layer in range(len(self._weights) - 1, -1, -1):
            weight_grads[layer] = activations[layer].T @ delta
            bias_grads[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = (delta @ self._weights[layer].T) * activation_grad(activations[layer])
        return weight_grads + bias_grads

    def __repr__(self) -> str:
        return (
            f"DNNRegressor(layers={list(self.hidden_layers) + [1]}, activation={self.activation}, "
            f"loss={self.loss})"
        )

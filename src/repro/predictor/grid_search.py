"""Hyper-parameter grid search with cross-validation (used to tune XGBoost)."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.predictor.losses import LossFn, get_loss


@dataclass
class GridSearchResult:
    """The outcome of a grid search."""

    best_params: Dict[str, object]
    best_score: float
    all_results: List[Dict[str, object]]


def _cv_splits(n_samples: int, n_folds: int, rng: np.random.Generator):
    indices = rng.permutation(n_samples)
    folds = np.array_split(indices, n_folds)
    for fold_index in range(n_folds):
        validation = folds[fold_index]
        training = np.concatenate([folds[i] for i in range(n_folds) if i != fold_index])
        yield training, validation


def grid_search(
    model_factory: Callable[..., object],
    param_grid: Dict[str, Sequence[object]],
    features: np.ndarray,
    targets: np.ndarray,
    n_folds: int = 3,
    loss: str | LossFn = "mse",
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustively evaluate ``param_grid`` with ``n_folds``-fold cross-validation.

    ``model_factory(**params)`` must return an object with ``fit``/``predict``.
    The combination with the lowest mean validation loss wins.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    loss_fn = get_loss(loss) if isinstance(loss, str) else loss
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float).reshape(-1)
    if features.shape[0] < n_folds:
        raise ValueError("not enough samples for the requested number of folds")
    rng = np.random.default_rng(seed)

    names = list(param_grid)
    all_results: List[Dict[str, object]] = []
    best_params: Dict[str, object] = {}
    best_score = float("inf")

    for combination in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combination))
        fold_losses = []
        for train_idx, val_idx in _cv_splits(features.shape[0], n_folds, rng):
            model = model_factory(**params)
            model.fit(features[train_idx], targets[train_idx])
            predictions = model.predict(features[val_idx])
            fold_losses.append(loss_fn(targets[val_idx], predictions))
        score = float(np.mean(fold_losses))
        all_results.append({"params": params, "score": score})
        if score < best_score:
            best_score = score
            best_params = params
    return GridSearchResult(best_params=best_params, best_score=best_score, all_results=all_results)

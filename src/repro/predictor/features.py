"""Feature extraction from simulator statistics (Section III-D of the paper).

The relevant statistics derived from the instruction-accurate simulation are

* the number of executed load/store/branch instructions divided by the total
  number of executed instructions,
* the total number of executed instructions normalised to the group, and
* cache read/write replacements/hits/misses divided by the read/write
  accesses of each cache (Equation 1),

each used both in its original form and normalised to the group
(Equation 2).  Group means are known exactly during training; at inference
time they are approximated with a static or dynamic window (Section III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

#: Cache levels whose statistics become features (absent levels yield zeros,
#: e.g. the L3 entries on ARM and RISC-V).
FEATURE_CACHE_LEVELS = ("l1d", "l1i", "l2", "l3")

#: Cache ratio features per level: numerator statistic divided by the
#: read or write access count.
_CACHE_RATIOS = (
    ("read_hits", "read_accesses"),
    ("read_misses", "read_accesses"),
    ("read_replacements", "read_accesses"),
    ("write_hits", "write_accesses"),
    ("write_misses", "write_accesses"),
    ("write_replacements", "write_accesses"),
)


def _safe_ratio(numerator: float, denominator: float) -> float:
    return float(numerator / denominator) if denominator else 0.0


class FeatureExtractor:
    """Turns one simulation's flat statistics into the paper's raw features."""

    #: Feature that is only used in group-normalised form.
    TOTAL_INSTRUCTIONS = "total_instructions"

    def __init__(self, cache_levels: Sequence[str] = FEATURE_CACHE_LEVELS):
        self.cache_levels = tuple(cache_levels)

    # -- raw features -------------------------------------------------------
    def raw_features(self, flat_stats: Mapping[str, float]) -> Dict[str, float]:
        """Named raw features (Equation 1 style ratios plus the total count)."""
        total = float(flat_stats.get("cpu.num_insts", 0.0))
        features: Dict[str, float] = {
            "load_ratio": _safe_ratio(flat_stats.get("cpu.num_loads", 0.0), total),
            "store_ratio": _safe_ratio(flat_stats.get("cpu.num_stores", 0.0), total),
            "branch_ratio": _safe_ratio(flat_stats.get("cpu.num_branches", 0.0), total),
            self.TOTAL_INSTRUCTIONS: total,
        }
        for level in self.cache_levels:
            for numerator, denominator in _CACHE_RATIOS:
                request = 'read' if numerator.startswith('read') else 'write'
                name = f"{level}_{numerator}_per_{request}_access"
                features[name] = _safe_ratio(
                    flat_stats.get(f"{level}.{numerator}", 0.0),
                    flat_stats.get(f"{level}.{denominator}", 0.0),
                )
        return features

    def feature_names(self) -> List[str]:
        """Raw feature names in vector order."""
        dummy = self.raw_features({})
        return list(dummy.keys())

    def vector_names(self) -> List[str]:
        """Names of the final feature vector (raw ratios + group-normalised copies)."""
        raw = self.feature_names()
        ratios = [name for name in raw if name != self.TOTAL_INSTRUCTIONS]
        return ratios + [f"{name}_norm" for name in raw]

    # -- final vectors ---------------------------------------------------------
    def vector(
        self,
        flat_stats: Mapping[str, float],
        group_means: Mapping[str, float],
    ) -> np.ndarray:
        """The model input vector for one implementation.

        The vector is the concatenation of the raw ratio features with the
        group-normalised form of every feature (Equation 2); the absolute
        instruction count only appears in normalised form.
        """
        raw = self.raw_features(flat_stats)
        values: List[float] = [
            value for name, value in raw.items() if name != self.TOTAL_INSTRUCTIONS
        ]
        for name, value in raw.items():
            mean = float(group_means.get(name, 0.0))
            values.append((value - mean) / mean if mean else 0.0)
        return np.asarray(values, dtype=float)

    def group_means(self, all_stats: Sequence[Mapping[str, float]]) -> Dict[str, float]:
        """Exact per-feature means over all implementations of one group."""
        if not all_stats:
            raise ValueError("cannot compute group means of an empty group")
        accumulator: Dict[str, float] = {}
        for flat_stats in all_stats:
            for name, value in self.raw_features(flat_stats).items():
                accumulator[name] = accumulator.get(name, 0.0) + value
        return {name: value / len(all_stats) for name, value in accumulator.items()}


@dataclass
class GroupStatistics:
    """Exact group means for features and run times (training-time view)."""

    feature_means: Dict[str, float]
    time_mean: float

    @staticmethod
    def from_samples(
        extractor: FeatureExtractor,
        stats: Sequence[Mapping[str, float]],
        times: Sequence[float],
    ) -> "GroupStatistics":
        """Compute exact group statistics from all samples of one group."""
        if len(stats) != len(times):
            raise ValueError("stats and times must have the same length")
        return GroupStatistics(
            feature_means=extractor.group_means(stats),
            time_mean=float(np.mean(times)) if len(times) else 0.0,
        )

    def normalize_time(self, time_s: float) -> float:
        """Equation 2 applied to a run time (the training target)."""
        if not self.time_mean:
            return 0.0
        return (time_s - self.time_mean) / self.time_mean


class StaticWindow:
    """Static-window approximation of the group means (Section III-E).

    The means are estimated once from the first ``window_size`` samples and
    kept fixed afterwards.
    """

    def __init__(self, extractor: FeatureExtractor, window_size: int = 64):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.extractor = extractor
        self.window_size = window_size
        self._buffer: List[Mapping[str, float]] = []
        self._means: Optional[Dict[str, float]] = None

    def observe(self, flat_stats: Mapping[str, float]) -> None:
        """Record one simulated implementation."""
        if self._means is None:
            self._buffer.append(dict(flat_stats))
            if len(self._buffer) >= self.window_size:
                self._means = self.extractor.group_means(self._buffer)

    @property
    def ready(self) -> bool:
        """Whether the window has been filled."""
        return self._means is not None

    def means(self) -> Dict[str, float]:
        """Current estimate of the group means (uses a partial window if needed)."""
        if self._means is not None:
            return self._means
        if not self._buffer:
            return {}
        return self.extractor.group_means(self._buffer)


class DynamicWindow:
    """Dynamic-window approximation: means are updated with every new sample."""

    def __init__(self, extractor: FeatureExtractor):
        self.extractor = extractor
        self._sums: Dict[str, float] = {}
        self._count = 0

    def observe(self, flat_stats: Mapping[str, float]) -> None:
        """Record one simulated implementation and update the running means."""
        for name, value in self.extractor.raw_features(flat_stats).items():
            self._sums[name] = self._sums.get(name, 0.0) + value
        self._count += 1

    @property
    def ready(self) -> bool:
        """Whether at least one sample has been observed."""
        return self._count > 0

    def means(self) -> Dict[str, float]:
        """Current running means."""
        if not self._count:
            return {}
        return {name: value / self._count for name, value in self._sums.items()}

"""Feature extraction from simulator statistics (Section III-D of the paper).

The relevant statistics derived from the instruction-accurate simulation are

* the number of executed load/store/branch instructions divided by the total
  number of executed instructions,
* the total number of executed instructions normalised to the group, and
* cache read/write replacements/hits/misses divided by the read/write
  accesses of each cache (Equation 1),

each used both in its original form and normalised to the group
(Equation 2).  Group means are known exactly during training; at inference
time they are approximated with a static or dynamic window (Section III-E).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

#: Cache levels whose statistics become features (absent levels yield zeros,
#: e.g. the L3 entries on ARM and RISC-V).
FEATURE_CACHE_LEVELS = ("l1d", "l1i", "l2", "l3")

#: Cache ratio features per level: numerator statistic divided by the
#: read or write access count.
_CACHE_RATIOS = (
    ("read_hits", "read_accesses"),
    ("read_misses", "read_accesses"),
    ("read_replacements", "read_accesses"),
    ("write_hits", "write_accesses"),
    ("write_misses", "write_accesses"),
    ("write_replacements", "write_accesses"),
)


def _safe_ratio(numerator: float, denominator: float) -> float:
    return float(numerator / denominator) if denominator else 0.0


class FeatureCache:
    """Bounded LRU cache of raw feature dictionaries, keyed by program digest.

    The companion of the simulation memo (:mod:`repro.sim.memo`): when the
    simulator serves a memoized or deduplicated candidate, its statistics are
    byte-for-byte those of the original, so the featurization is identical
    too.  The digest is the result's ``sim_digest`` — the program's
    ``content_digest`` qualified by hierarchy/trace/engine identity, i.e. the
    simulation memo key — plus the extractor's cache-level tuple, which makes
    repeated featurization of such candidates a dictionary lookup and can
    never conflate identical programs simulated under different
    configurations.  Thread-safe; entries are evicted least-recently-used
    once ``maxsize`` is reached.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, Tuple[str, ...]], Dict[str, float]]" = (
            OrderedDict()
        )

    def get(self, digest: str, levels: Tuple[str, ...]) -> Optional[Dict[str, float]]:
        """The cached raw features for ``digest``, or ``None``.

        Returns a copy so callers can never corrupt the cached entry.
        """
        key = (digest, levels)
        with self._lock:
            features = self._entries.get(key)
            if features is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(features)

    def put(self, digest: str, levels: Tuple[str, ...], features: Mapping[str, float]) -> None:
        """Store ``features`` under ``digest``, evicting the LRU entry if full."""
        key = (digest, levels)
        with self._lock:
            self._entries[key] = dict(features)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_DEFAULT_FEATURE_CACHE = FeatureCache()


def default_feature_cache() -> FeatureCache:
    """The process-wide feature cache shared by all default extractors."""
    return _DEFAULT_FEATURE_CACHE


class FeatureExtractor:
    """Turns one simulation's flat statistics into the paper's raw features."""

    #: Feature that is only used in group-normalised form.
    TOTAL_INSTRUCTIONS = "total_instructions"

    def __init__(
        self,
        cache_levels: Sequence[str] = FEATURE_CACHE_LEVELS,
        cache: Optional[FeatureCache] = None,
    ):
        self.cache_levels = tuple(cache_levels)
        self.cache = cache if cache is not None else default_feature_cache()

    # -- raw features -------------------------------------------------------
    def raw_features(
        self, flat_stats: Mapping[str, float], digest: Optional[str] = None
    ) -> Dict[str, float]:
        """Named raw features (Equation 1 style ratios plus the total count).

        When ``digest`` identifies the originating simulation (the result's
        ``sim_digest``), the result is served from / stored into the feature
        cache, so re-featurizing a memoized or deduplicated candidate costs a
        lookup instead of a recomputation.
        """
        if digest:
            cached = self.cache.get(digest, self.cache_levels)
            if cached is not None:
                return cached
        features = self._compute_raw_features(flat_stats)
        if digest:
            self.cache.put(digest, self.cache_levels, features)
        return features

    def _compute_raw_features(self, flat_stats: Mapping[str, float]) -> Dict[str, float]:
        total = float(flat_stats.get("cpu.num_insts", 0.0))
        features: Dict[str, float] = {
            "load_ratio": _safe_ratio(flat_stats.get("cpu.num_loads", 0.0), total),
            "store_ratio": _safe_ratio(flat_stats.get("cpu.num_stores", 0.0), total),
            "branch_ratio": _safe_ratio(flat_stats.get("cpu.num_branches", 0.0), total),
            self.TOTAL_INSTRUCTIONS: total,
        }
        for level in self.cache_levels:
            for numerator, denominator in _CACHE_RATIOS:
                request = 'read' if numerator.startswith('read') else 'write'
                name = f"{level}_{numerator}_per_{request}_access"
                features[name] = _safe_ratio(
                    flat_stats.get(f"{level}.{numerator}", 0.0),
                    flat_stats.get(f"{level}.{denominator}", 0.0),
                )
        return features

    def feature_names(self) -> List[str]:
        """Raw feature names in vector order."""
        dummy = self.raw_features({})
        return list(dummy.keys())

    def vector_names(self) -> List[str]:
        """Names of the final feature vector (raw ratios + group-normalised copies)."""
        raw = self.feature_names()
        ratios = [name for name in raw if name != self.TOTAL_INSTRUCTIONS]
        return ratios + [f"{name}_norm" for name in raw]

    # -- final vectors ---------------------------------------------------------
    def vector(
        self,
        flat_stats: Mapping[str, float],
        group_means: Mapping[str, float],
        digest: Optional[str] = None,
    ) -> np.ndarray:
        """The model input vector for one implementation.

        The vector is the concatenation of the raw ratio features with the
        group-normalised form of every feature (Equation 2); the absolute
        instruction count only appears in normalised form.  ``digest``, when
        given, routes the raw featurization through the feature cache.
        """
        return self.vector_from_raw(self.raw_features(flat_stats, digest=digest), group_means)

    def vector_from_raw(
        self, raw: Mapping[str, float], group_means: Mapping[str, float]
    ) -> np.ndarray:
        """The model input vector from already-extracted raw features.

        This is the layout extension point: both training
        (:meth:`ScorePredictor.fit`) and inference (:meth:`vector`) route
        through it, so subclasses that change the vector layout must
        override this method rather than :meth:`vector`.
        """
        values: List[float] = [
            value for name, value in raw.items() if name != self.TOTAL_INSTRUCTIONS
        ]
        for name, value in raw.items():
            mean = float(group_means.get(name, 0.0))
            values.append((value - mean) / mean if mean else 0.0)
        return np.asarray(values, dtype=float)

    def group_means(self, all_stats: Sequence[Mapping[str, float]]) -> Dict[str, float]:
        """Exact per-feature means over all implementations of one group."""
        if not all_stats:
            raise ValueError("cannot compute group means of an empty group")
        return self.group_means_from_raw([self.raw_features(s) for s in all_stats])

    def group_means_from_raw(
        self, all_raw: Sequence[Mapping[str, float]]
    ) -> Dict[str, float]:
        """Exact per-feature means over already-extracted raw features."""
        if not all_raw:
            raise ValueError("cannot compute group means of an empty group")
        accumulator: Dict[str, float] = {}
        for raw in all_raw:
            for name, value in raw.items():
                accumulator[name] = accumulator.get(name, 0.0) + value
        return {name: value / len(all_raw) for name, value in accumulator.items()}


@dataclass
class GroupStatistics:
    """Exact group means for features and run times (training-time view)."""

    feature_means: Dict[str, float]
    time_mean: float

    @staticmethod
    def from_samples(
        extractor: FeatureExtractor,
        stats: Sequence[Mapping[str, float]],
        times: Sequence[float],
    ) -> "GroupStatistics":
        """Compute exact group statistics from all samples of one group."""
        if len(stats) != len(times):
            raise ValueError("stats and times must have the same length")
        return GroupStatistics(
            feature_means=extractor.group_means(stats),
            time_mean=float(np.mean(times)) if len(times) else 0.0,
        )

    def normalize_time(self, time_s: float) -> float:
        """Equation 2 applied to a run time (the training target)."""
        if not self.time_mean:
            return 0.0
        return (time_s - self.time_mean) / self.time_mean


class StaticWindow:
    """Static-window approximation of the group means (Section III-E).

    The means are estimated once from the first ``window_size`` samples and
    kept fixed afterwards.
    """

    def __init__(self, extractor: FeatureExtractor, window_size: int = 64):
        if window_size <= 0:
            raise ValueError("window_size must be positive")
        self.extractor = extractor
        self.window_size = window_size
        #: Raw features (not flat statistics) of the buffered samples.
        self._buffer: List[Dict[str, float]] = []
        self._means: Optional[Dict[str, float]] = None

    def observe(self, flat_stats: Mapping[str, float], digest: Optional[str] = None) -> None:
        """Record one simulated implementation (``digest`` enables the feature cache)."""
        if self._means is None:
            self._buffer.append(self.extractor.raw_features(flat_stats, digest=digest))
            if len(self._buffer) >= self.window_size:
                self._means = self.extractor.group_means_from_raw(self._buffer)

    @property
    def ready(self) -> bool:
        """Whether the window has been filled."""
        return self._means is not None

    def means(self) -> Dict[str, float]:
        """Current estimate of the group means (uses a partial window if needed)."""
        if self._means is not None:
            return self._means
        if not self._buffer:
            return {}
        return self.extractor.group_means_from_raw(self._buffer)


class DynamicWindow:
    """Dynamic-window approximation: means are updated with every new sample."""

    def __init__(self, extractor: FeatureExtractor):
        self.extractor = extractor
        self._sums: Dict[str, float] = {}
        self._count = 0

    def observe(self, flat_stats: Mapping[str, float], digest: Optional[str] = None) -> None:
        """Record one simulated implementation and update the running means."""
        for name, value in self.extractor.raw_features(flat_stats, digest=digest).items():
            self._sums[name] = self._sums.get(name, 0.0) + value
        self._count += 1

    @property
    def ready(self) -> bool:
        """Whether at least one sample has been observed."""
        return self._count > 0

    def means(self) -> Dict[str, float]:
        """Current running means."""
        if not self._count:
            return {}
        return {name: value / self._count for name, value in self._sums.items()}

"""Bayesian optimisation (Section III-D.3).

Two pieces live here:

* :class:`BayesianOptimizer` — a generic maximiser of expensive black-box
  functions over a box-constrained parameter space, using a Gaussian-process
  surrogate and the expected-improvement acquisition function;
* :class:`BayesianGPModel` — the paper's "Bayes" predictor: a Gaussian
  process whose kernel hyper-parameters (``C``, ``RBF_scale``, ``noise``) are
  tuned by maximising the negative validation loss, exactly as in Listing 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
from scipy.stats import norm

from repro.predictor.gaussian_process import (
    ConstantKernel,
    GaussianProcessRegressor,
    RBF,
    WhiteKernel,
)
from repro.predictor.losses import get_loss


@dataclass
class OptimizationStep:
    """One evaluated point of the objective function."""

    params: Dict[str, float]
    value: float


class BayesianOptimizer:
    """Maximises ``objective(**params)`` over box bounds with a GP surrogate."""

    def __init__(
        self,
        objective: Callable[..., float],
        bounds: Dict[str, Tuple[float, float]],
        n_initial: int = 5,
        n_iterations: int = 20,
        log_scale: bool = True,
        seed: int = 0,
    ):
        if not bounds:
            raise ValueError("bounds must contain at least one parameter")
        for name, (low, high) in bounds.items():
            if low >= high or low <= 0 and log_scale:
                raise ValueError(f"invalid bounds for {name!r}: ({low}, {high})")
        self.objective = objective
        self.bounds = dict(bounds)
        self.n_initial = n_initial
        self.n_iterations = n_iterations
        self.log_scale = log_scale
        self.rng = np.random.default_rng(seed)
        self.steps: List[OptimizationStep] = []

    # -- parameter-space helpers --------------------------------------------
    def _to_unit(self, params: Dict[str, float]) -> np.ndarray:
        values = []
        for name, (low, high) in self.bounds.items():
            value = params[name]
            if self.log_scale:
                values.append((np.log(value) - np.log(low)) / (np.log(high) - np.log(low)))
            else:
                values.append((value - low) / (high - low))
        return np.asarray(values)

    def _from_unit(self, unit: np.ndarray) -> Dict[str, float]:
        params = {}
        for coordinate, (name, (low, high)) in zip(unit, self.bounds.items()):
            coordinate = float(np.clip(coordinate, 0.0, 1.0))
            if self.log_scale:
                log_span = np.log(high) - np.log(low)
                params[name] = float(np.exp(np.log(low) + coordinate * log_span))
            else:
                params[name] = float(low + coordinate * (high - low))
        return params

    def _random_params(self) -> Dict[str, float]:
        return self._from_unit(self.rng.random(len(self.bounds)))

    # -- optimisation loop ------------------------------------------------------
    def maximize(self) -> OptimizationStep:
        """Run the optimisation and return the best step found."""
        for _ in range(self.n_initial):
            params = self._random_params()
            self.steps.append(OptimizationStep(params, float(self.objective(**params))))

        for _ in range(self.n_iterations):
            params = self._propose()
            self.steps.append(OptimizationStep(params, float(self.objective(**params))))
        return self.best

    @property
    def best(self) -> OptimizationStep:
        """The best step evaluated so far."""
        if not self.steps:
            raise RuntimeError("the optimiser has not been run")
        return max(self.steps, key=lambda step: step.value)

    def _propose(self) -> Dict[str, float]:
        """Expected-improvement proposal from the GP surrogate."""
        observed_x = np.asarray([self._to_unit(step.params) for step in self.steps])
        observed_y = np.asarray([step.value for step in self.steps])
        finite = np.isfinite(observed_y)
        if finite.sum() < 2:
            return self._random_params()
        observed_x, observed_y = observed_x[finite], observed_y[finite]

        surrogate = GaussianProcessRegressor(
            ConstantKernel(float(np.var(observed_y) + 1e-6)) * RBF(0.2) + WhiteKernel(1e-6)
        )
        surrogate.fit(observed_x, observed_y)

        candidates = self.rng.random((256, len(self.bounds)))
        mean, std = surrogate.predict(candidates, return_std=True)
        best_value = observed_y.max()
        improvement = mean - best_value - 1e-9
        z = improvement / std
        expected_improvement = improvement * norm.cdf(z) + std * norm.pdf(z)
        return self._from_unit(candidates[int(np.argmax(expected_improvement))])


class BayesianGPModel:
    """The paper's Bayesian-optimisation predictor (GP with tuned kernel)."""

    #: Hyper-parameter bounds for (C, RBF length scale, white-noise level).
    DEFAULT_BOUNDS = {
        "C": (1e-2, 1e2),
        "RBF_scale": (1e-1, 1e2),
        "noise": (1e-6, 1e-1),
    }

    def __init__(
        self,
        loss: str = "mse",
        n_initial: int = 6,
        n_iterations: int = 18,
        validation_fraction: float = 0.25,
        bounds: Optional[Dict[str, Tuple[float, float]]] = None,
        random_state: int = 0,
    ):
        self.loss_name = loss
        self.loss = get_loss(loss)
        self.n_initial = n_initial
        self.n_iterations = n_iterations
        self.validation_fraction = validation_fraction
        self.bounds = dict(bounds or self.DEFAULT_BOUNDS)
        self.random_state = random_state
        self.best_params_: Optional[Dict[str, float]] = None
        self._model: Optional[GaussianProcessRegressor] = None
        self.n_features_: int = 0

    # -- objective (Listing 6) -------------------------------------------------
    def _objective_factory(
        self,
        train_x: np.ndarray,
        train_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
    ) -> Callable[..., float]:
        def objective_function(C: float, RBF_scale: float, noise: float) -> float:
            kernel = ConstantKernel(constant_value=C) * RBF(length_scale=RBF_scale) + WhiteKernel(
                noise_level=noise
            )
            try:
                model = GaussianProcessRegressor(kernel).fit(train_x, train_y)
                predictions = model.predict(test_x)
            except np.linalg.LinAlgError:
                return -1e9
            return -self.loss(test_y, predictions)

        return objective_function

    # -- scikit-style interface ---------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "BayesianGPModel":
        """Tune the kernel hyper-parameters, then refit the GP on all data."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        self.n_features_ = features.shape[1]
        rng = np.random.default_rng(self.random_state)
        n_samples = features.shape[0]
        n_validation = max(2, int(n_samples * self.validation_fraction))
        permutation = rng.permutation(n_samples)
        validation_idx = permutation[:n_validation]
        train_idx = permutation[n_validation:]
        if len(train_idx) < 2:
            train_idx = permutation
            validation_idx = permutation

        objective = self._objective_factory(
            features[train_idx], targets[train_idx],
            features[validation_idx], targets[validation_idx],
        )
        optimizer = BayesianOptimizer(
            objective,
            self.bounds,
            n_initial=self.n_initial,
            n_iterations=self.n_iterations,
            seed=self.random_state,
        )
        self.best_params_ = optimizer.maximize().params

        kernel = (
            ConstantKernel(constant_value=self.best_params_["C"])
            * RBF(length_scale=self.best_params_["RBF_scale"])
            + WhiteKernel(noise_level=self.best_params_["noise"])
        )
        self._model = GaussianProcessRegressor(kernel).fit(features, targets)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Posterior-mean prediction."""
        if self._model is None:
            raise RuntimeError("the model has not been fitted")
        return self._model.predict(np.asarray(features, dtype=float))

    def __repr__(self) -> str:
        return f"BayesianGPModel(loss={self.loss_name}, best_params={self.best_params_})"

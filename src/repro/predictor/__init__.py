"""Score predictors (Contribution II of the paper).

A score predictor maps the statistics of an instruction-accurate simulation to
a *score* that orders different implementations of the same kernel group the
way their measured run times on the target CPU would.  Four model families
are provided, mirroring Section III-D: multiple linear regression, a small
fully-connected DNN, Gaussian-process regression tuned by Bayesian
optimisation, and gradient-boosted trees (XGBoost).
"""

from repro.predictor.losses import mse, mae, rss, get_loss
from repro.predictor.features import (
    FeatureCache,
    FeatureExtractor,
    GroupStatistics,
    StaticWindow,
    DynamicWindow,
    FEATURE_CACHE_LEVELS,
    default_feature_cache,
)
from repro.predictor.linear import LinearRegressionModel
from repro.predictor.dnn import DNNRegressor
from repro.predictor.gaussian_process import (
    ConstantKernel,
    RBF,
    WhiteKernel,
    GaussianProcessRegressor,
)
from repro.predictor.bayes_opt import BayesianOptimizer, BayesianGPModel
from repro.predictor.xgboost import GradientBoostedTrees
from repro.predictor.grid_search import grid_search
from repro.predictor.training import (
    TrainingSample,
    PredictorDataset,
    ScorePredictor,
    make_model,
    PREDICTOR_NAMES,
)

__all__ = [
    "mse",
    "mae",
    "rss",
    "get_loss",
    "FeatureCache",
    "FeatureExtractor",
    "GroupStatistics",
    "StaticWindow",
    "DynamicWindow",
    "FEATURE_CACHE_LEVELS",
    "default_feature_cache",
    "LinearRegressionModel",
    "DNNRegressor",
    "ConstantKernel",
    "RBF",
    "WhiteKernel",
    "GaussianProcessRegressor",
    "BayesianOptimizer",
    "BayesianGPModel",
    "GradientBoostedTrees",
    "grid_search",
    "TrainingSample",
    "PredictorDataset",
    "ScorePredictor",
    "make_model",
    "PREDICTOR_NAMES",
]

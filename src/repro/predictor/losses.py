"""Loss functions used for predictor training and tuning (Section III-D)."""

from __future__ import annotations

from typing import Callable

import numpy as np

LossFn = Callable[[np.ndarray, np.ndarray], float]


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean((y_true - y_pred) ** 2))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.mean(np.abs(y_true - y_pred)))


def rss(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Residual sum of squares."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.sum((y_true - y_pred) ** 2))


_LOSSES = {"mse": mse, "mae": mae, "rss": rss}


def get_loss(name: str) -> LossFn:
    """Look up a loss function by name (``mse``, ``mae`` or ``rss``)."""
    key = name.strip().lower()
    if key not in _LOSSES:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(_LOSSES)}")
    return _LOSSES[key]
